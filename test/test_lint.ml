(* Tests for phi-lint: every rule must fire on a minimal offending
   fixture, stay silent on the compliant variant, and honour the
   [phi-lint: allow] suppression comment. *)

let rules_of vs = List.map (fun v -> v.Lint.rule) vs

let lint ?(path = "lib/fake/fixture.ml") src = rules_of (Lint.lint_source ~path src)

let check_rules msg expected actual = Alcotest.(check (list string)) msg expected actual

(* {2 Token rules fire} *)

let test_obj_magic_fires () =
  check_rules "Obj.magic" [ "obj-magic" ] (lint "let f x = Obj.magic x\n")

let test_poly_compare_fires () =
  check_rules "bare compare" [ "poly-compare" ] (lint "let s l = List.sort compare l\n");
  check_rules "Stdlib.compare" [ "poly-compare" ]
    (lint "let s l = List.sort Stdlib.compare l\n")

let test_float_equal_fires () =
  check_rules "= on float literal" [ "float-equal" ] (lint "let f x = x = 0.5\n");
  check_rules "<> on float literal" [ "float-equal" ] (lint "let f x = x <> 1.\n");
  check_rules "= on nan" [ "float-equal" ] (lint "let f x = x = nan\n");
  check_rules "= on infinity" [ "float-equal" ] (lint "let f x = x = infinity\n")

let test_list_nth_fires () =
  check_rules "List.nth" [ "list-nth" ] (lint "let f l = List.nth l 3\n")

let test_hashtbl_find_fires () =
  check_rules "Hashtbl.find" [ "hashtbl-find" ] (lint "let f h k = Hashtbl.find h k\n")

let test_failwith_fires_in_lib_only () =
  check_rules "failwith in lib" [ "failwith" ] (lint "let f () = failwith \"boom\"\n");
  check_rules "failwith outside lib" []
    (lint ~path:"test/fixture.ml" "let f () = failwith \"boom\"\n")

let test_exit_fires_in_lib_only () =
  check_rules "exit in lib" [ "exit" ] (lint "let f () = exit 1\n");
  check_rules "exit outside lib" [] (lint ~path:"bin/fixture.ml" "let f () = exit 1\n")

(* {2 Compliant code stays silent} *)

let test_clean_code_passes () =
  check_rules "typed comparators" []
    (lint
       "let s l = List.sort Float.compare l\n\
        let eq a b = Float.equal a b\n\
        let f l = List.nth_opt l 3\n\
        let g h k = Hashtbl.find_opt h k\n")

let test_float_binding_not_flagged () =
  (* [=] in binding position is definition, not comparison. *)
  check_rules "let binding" [] (lint "let x = 0.5\n");
  check_rules "record field" [] (lint "let r = { weight = 0.5; bias = 1. }\n");
  check_rules "optional default" [] (lint "let f ?(alpha = 0.2) () = alpha\n");
  check_rules "mutable field decl" [] (lint "type t = { mutable w : float }\nlet d = { w = 0. }\n")

let test_comments_and_strings_immune () =
  check_rules "in comment" [] (lint "(* use Obj.magic? never; x = 0.5 is bad *)\nlet x = 1\n");
  check_rules "in string" [] (lint "let s = \"Obj.magic and List.nth and x = 0.5\"\n");
  check_rules "in nested comment" [] (lint "(* outer (* failwith *) still comment *)\nlet x = 1\n")

let test_line_numbers () =
  match Lint.lint_source ~path:"lib/fake/fixture.ml" "let a = 1\n\nlet f l = List.nth l 0\n" with
  | [ v ] ->
    Alcotest.(check int) "line 3" 3 v.Lint.line;
    Alcotest.(check string) "rule" "list-nth" v.Lint.rule
  | vs -> Alcotest.fail (Printf.sprintf "expected 1 violation, got %d" (List.length vs))

(* {2 Suppression} *)

let test_allow_same_line () =
  check_rules "suppressed" []
    (lint "let f l = List.nth l 3 (* phi-lint: allow list-nth *)\n")

let test_allow_previous_line () =
  check_rules "suppressed" []
    (lint "(* phi-lint: allow hashtbl-find *)\nlet f h k = Hashtbl.find h k\n")

let test_allow_is_rule_specific () =
  (* An allow for one rule must not silence a different one. *)
  check_rules "wrong rule allowed" [ "list-nth" ]
    (lint "let f l = List.nth l 3 (* phi-lint: allow hashtbl-find *)\n")

let test_allow_does_not_leak_to_later_lines () =
  check_rules "second use still flagged" [ "list-nth" ]
    (lint "(* phi-lint: allow list-nth *)\nlet f l = List.nth l 3\nlet g l = List.nth l 4\n")

(* {2 File-scoped rules} *)

let test_mli_doc_fires () =
  check_rules "undocumented mli" [ "mli-doc" ]
    (rules_of (Lint.lint_source ~path:"lib/fake/fixture.mli" "val f : int -> int\n"))

let test_mli_doc_satisfied () =
  check_rules "documented mli" []
    (rules_of
       (Lint.lint_source ~path:"lib/fake/fixture.mli" "(** Documented. *)\n\nval f : int -> int\n"))

let test_missing_mli_fires () =
  let vs =
    Lint.lint_tree
      [ ("lib/fake/a.ml", "let x = 1\n"); ("lib/fake/b.ml", "let y = 2\n");
        ("lib/fake/b.mli", "(** Documented. *)\nval y : int\n") ]
  in
  check_rules "a.ml lacks interface" [ "missing-mli" ] (rules_of vs);
  match vs with
  | [ v ] -> Alcotest.(check string) "names the file" "lib/fake/a.ml" v.Lint.file
  | _ -> Alcotest.fail "expected exactly one violation"

let test_missing_mli_lib_only () =
  check_rules "non-library code needs no mli" []
    (rules_of (Lint.lint_tree [ ("bin/tool.ml", "let x = 1\n") ]))

let test_in_lib () =
  Alcotest.(check bool) "lib path" true (Lint.in_lib "lib/sim/engine.ml");
  Alcotest.(check bool) "test path" false (Lint.in_lib "test/test_sim.ml");
  Alcotest.(check bool) "bin path" false (Lint.in_lib "bin/phi_cli.ml")

let test_tree_sorted_and_rendered () =
  let vs =
    Lint.lint_tree
      [ ("lib/fake/z.ml", "let f l = List.nth l 0\nlet g h k = Hashtbl.find h k\n");
        ("lib/fake/z.mli", "(** Doc. *)\nval f : int list -> int\nval g : ('a, 'b) Hashtbl.t -> 'a -> 'b\n")
      ]
  in
  check_rules "sorted by line" [ "list-nth"; "hashtbl-find" ] (rules_of vs);
  match vs with
  | v :: _ ->
    Alcotest.(check string) "rendering"
      "lib/fake/z.ml:1: list-nth: List.nth is partial and O(n); use List.nth_opt or an array"
      (Lint.to_string v)
  | [] -> Alcotest.fail "expected violations"

(* {2 domain-global: shared mutable state in pooled libraries} *)

let exp_path = "lib/experiments/fixture.ml"

let test_domain_global_fires () =
  check_rules "top-level ref" [ "domain-global" ]
    (lint ~path:exp_path "let counter = ref 0\n");
  check_rules "top-level Hashtbl" [ "domain-global" ]
    (lint ~path:exp_path "let cache = Hashtbl.create 16\n");
  check_rules "top-level Atomic" [ "domain-global" ]
    (lint ~path:exp_path "let hits = Atomic.make 0\n");
  check_rules "lib/runner in scope" [ "domain-global" ]
    (lint ~path:"lib/runner/fixture.ml" "let state = Queue.create ()\n")

let test_domain_global_scope () =
  (* The rule covers only code that runs inside pool worker domains. *)
  check_rules "lib/sim out of scope" []
    (lint ~path:"lib/sim/fixture.ml" "let counter = ref 0\n");
  check_rules "bin out of scope" []
    (lint ~path:"bin/fixture.ml" "let counter = ref 0\n")

let test_domain_global_silent_on_local_state () =
  (* Functions that construct fresh mutable state per call are exactly
     the per-job isolation the pool wants — never flagged. *)
  check_rules "function returning ref" []
    (lint ~path:exp_path "let make_counter () = ref 0\n");
  check_rules "local ref inside function" []
    (lint ~path:exp_path "let f x =\n  let acc = ref x in\n  !acc\n");
  check_rules "plain immutable binding" []
    (lint ~path:exp_path "let default_seeds = [ 1; 2; 3 ]\n")

let test_domain_global_allow () =
  check_rules "suppressed with allow" []
    (lint ~path:exp_path
       "(* phi-lint: allow domain-global *)\nlet cache = Hashtbl.create 16\n")

let test_in_domain_pool () =
  Alcotest.(check bool) "experiments" true (Lint.in_domain_pool "lib/experiments/sweep.ml");
  Alcotest.(check bool) "runner" true (Lint.in_domain_pool "lib/runner/pool.ml");
  Alcotest.(check bool) "sim" false (Lint.in_domain_pool "lib/sim/engine.ml");
  Alcotest.(check bool) "test" false (Lint.in_domain_pool "test/test_runner.ml")

(* {2 hot-queue: Stdlib.Queue in per-packet libraries} *)

let test_hot_queue_fires () =
  check_rules "Queue.create in lib/net" [ "hot-queue" ]
    (lint ~path:"lib/net/fixture.ml" "let f () = Queue.create ()\n");
  check_rules "Queue.push in lib/sim" [ "hot-queue" ]
    (lint ~path:"lib/sim/fixture.ml" "let f q x = Queue.push x q\n");
  check_rules "Stdlib.Queue qualified" [ "hot-queue" ]
    (lint ~path:"lib/net/fixture.ml" "let f () = Stdlib.Queue.create ()\n");
  check_rules "bare Queue type use" [ "hot-queue" ]
    (lint ~path:"lib/sim/fixture.ml" "type t = { q : int Queue.t }\n")

let test_hot_queue_scope () =
  (* Only the per-packet hot-path libraries are covered; a queue in a
     sender or a test is not a hot-path allocation. *)
  check_rules "lib/tcp out of scope" []
    (lint ~path:"lib/tcp/fixture.ml" "let f () = Queue.create ()\n");
  check_rules "test out of scope" []
    (lint ~path:"test/fixture.ml" "let f () = Queue.create ()\n")

let test_hot_queue_allow () =
  check_rules "suppressed with allow" []
    (lint ~path:"lib/net/fixture.ml"
       "(* phi-lint: allow hot-queue *)\nlet f () = Queue.create ()\n")

let test_in_hot_path () =
  Alcotest.(check bool) "net" true (Lint.in_hot_path "lib/net/link.ml");
  Alcotest.(check bool) "sim" true (Lint.in_hot_path "lib/sim/engine.ml");
  Alcotest.(check bool) "tcp" false (Lint.in_hot_path "lib/tcp/sender.ml");
  Alcotest.(check bool) "test" false (Lint.in_hot_path "test/test_sim.ml")

(* {2 packet-escape: pooled packet ownership} *)

let net_path = "lib/net/fixture.ml"

let test_packet_escape_fires_on_legacy_constructors () =
  check_rules "Packet.data outside the pool" [ "packet-escape" ]
    (lint ~path:net_path
       "let f () = Packet.data ~flow:0 ~src:0 ~dst:1 ~seq:0 ~now:0. ~retransmit:false\n");
  check_rules "Packet.ack outside the pool" [ "packet-escape" ]
    (lint ~path:"lib/tcp/fixture.ml" "let f () = Packet.ack ~flow:0\n")

let test_packet_escape_fires_on_mutable_handle_field () =
  check_rules "mutable handle field" [ "packet-escape" ]
    (lint ~path:net_path "type t = { mutable last : Packet.handle }\n")

let test_packet_escape_fires_on_use_after_release () =
  (* Both engines see this one: the lexical scan flags the same-line use,
     and the AST lifetime pass tracks the handle's state. *)
  check_rules "handle touched after release" [ "packet-escape"; "handle-lifetime" ]
    (lint ~path:net_path "let f pool pkt = Packet.release pool pkt; consume pkt\n")

let test_packet_escape_silent_on_contract_code () =
  (* The pool's own acquire calls, immutable/callback handle positions,
     and release-as-last-use are exactly the contract. *)
  check_rules "acquire is fine" []
    (lint ~path:net_path
       "let f pool = Packet.acquire_data pool ~flow:0 ~src:0 ~dst:1 ~seq:0 ~now:0. \
        ~retransmit:false\n");
  check_rules "handle-consuming callback field is fine" []
    (lint ~path:net_path "type t = { mutable receiver : Packet.handle -> unit }\n");
  check_rules "non-mutable handle argument type is fine" []
    (lint ~path:net_path "val send : t -> Packet.handle -> unit\n");
  check_rules "release as last use is fine" []
    (lint ~path:net_path "let f pool pkt = Packet.release pool pkt\n")

let test_packet_escape_scope () =
  (* The pool module mints handles; code outside the packet layers never
     sees one. *)
  check_rules "packet.ml itself exempt" []
    (lint ~path:"lib/net/packet.ml" "let data = 1\nlet f () = Packet.data\n");
  check_rules "bench out of scope" []
    (lint ~path:"bench/fixture.ml" "let f () = Packet.data ~flow:0\n");
  Alcotest.(check bool) "link in scope" true (Lint.in_packet_scope "lib/net/link.ml");
  Alcotest.(check bool) "sender in scope" true (Lint.in_packet_scope "lib/tcp/sender.ml");
  Alcotest.(check bool) "pool exempt" false (Lint.in_packet_scope "lib/net/packet.ml");
  Alcotest.(check bool) "pool mli exempt" false (Lint.in_packet_scope "lib/net/packet.mli");
  Alcotest.(check bool) "sim out of scope" false (Lint.in_packet_scope "lib/sim/engine.ml")

let test_packet_escape_allow () =
  check_rules "suppressed with allow" []
    (lint ~path:net_path
       "(* phi-lint: allow packet-escape *)\ntype t = { mutable last : Packet.handle }\n")

(* {2 transport-unified: one sender transport} *)

let test_transport_unified_fires () =
  check_rules "Node.bind_flow outside the transport" [ "transport-unified" ]
    (lint ~path:"lib/experiments/fixture.ml"
       "let f node flow = Phi_net.Node.bind_flow node flow\n");
  check_rules "unqualified bind_flow" [ "transport-unified" ]
    (lint ~path:"lib/core/fixture.ml" "let f node flow = Node.bind_flow node flow\n");
  check_rules "legacy Remy_sender entry point" [ "transport-unified" ]
    (lint ~path:"lib/remy/fixture.ml" "let f () = Remy_sender.create ()\n");
  check_rules "qualified legacy sender" [ "transport-unified" ]
    (lint ~path:"lib/experiments/fixture.ml" "let f () = Phi_remy.Remy_sender.create ()\n")

let test_transport_unified_scope () =
  (* The transport itself and the substrate it binds to are the two
     places allowed to touch flow binding; tests and binaries are out of
     scope entirely. *)
  check_rules "lib/tcp may bind flows" []
    (lint ~path:"lib/tcp/fixture.ml" "let f node flow = Phi_net.Node.bind_flow node flow\n");
  check_rules "lib/net may bind flows" []
    (lint ~path:"lib/net/fixture.ml" "let f node flow = Node.bind_flow node flow\n");
  check_rules "tests out of scope" []
    (lint ~path:"test/fixture.ml" "let f node flow = Phi_net.Node.bind_flow node flow\n");
  check_rules "binaries out of scope" []
    (lint ~path:"bin/fixture.ml" "let f () = Remy_sender.create ()\n")

let test_transport_unified_allow () =
  check_rules "suppressed with allow" []
    (lint ~path:"lib/experiments/fixture.ml"
       "(* phi-lint: allow transport-unified *)\nlet f node flow = Node.bind_flow node flow\n")

(* {2 interpreted-lookup: compiled decision plane on hot paths} *)

let tcp_path = "lib/tcp/fixture.ml"

let test_interpreted_lookup_fires () =
  check_rules "Rule_table.lookup in lib/tcp" [ "interpreted-lookup" ]
    (lint ~path:tcp_path "let f table p = Rule_table.lookup table p\n");
  check_rules "qualified Rule_table.lookup" [ "interpreted-lookup" ]
    (lint ~path:tcp_path "let f table p = Phi_remy.Rule_table.lookup table p\n");
  check_rules "lookup_index is the same scan" [ "interpreted-lookup" ]
    (lint ~path:"lib/remy/remy_cc.ml" "let f table p = Rule_table.lookup_index table p\n");
  check_rules "Policy.choice_for in the swarm client" [ "interpreted-lookup" ]
    (lint ~path:"lib/experiments/swarm.ml" "let f policy ctx = Policy.choice_for policy ctx\n");
  check_rules "qualified Policy.choice_for in phi_client" [ "interpreted-lookup" ]
    (lint ~path:"lib/core/phi_client.ml" "let f p ctx = Phi.Policy.choice_for p ctx\n")

let test_interpreted_lookup_compiled_forms_pass () =
  check_rules "Compiled_table.lookup is the point" []
    (lint ~path:tcp_path "let f table p = Compiled_table.lookup table p\n");
  check_rules "Policy.Compiled.choice_for is the point" []
    (lint ~path:"lib/experiments/swarm.ml"
       "let f policy ctx = Policy.Compiled.choice_for policy ctx\n")

let test_interpreted_lookup_scope () =
  (* The compilers lower via the interpreted forms; training and cold
     code may scan freely. *)
  check_rules "compiled_table.ml may lower" []
    (lint ~path:"lib/remy/compiled_table.ml"
       "let f table p = Rule_table.lookup_index table p\n");
  check_rules "policy.ml may resolve" []
    (lint ~path:"lib/core/policy.ml" "let f p ctx = Policy.choice_for p ctx\n");
  check_rules "trainer out of scope" []
    (lint ~path:"lib/remy/trainer.ml" "let f table p = Rule_table.lookup table p\n");
  check_rules "tests out of scope" []
    (lint ~path:"test/fixture.ml" "let f table p = Rule_table.lookup table p\n")

let test_interpreted_lookup_allow () =
  check_rules "suppressed with allow" []
    (lint ~path:tcp_path
       "(* phi-lint: allow interpreted-lookup *)\nlet f table p = Rule_table.lookup table p\n")

let test_in_decision_scope () =
  Alcotest.(check bool) "tcp in scope" true (Lint.in_decision_scope "lib/tcp/sender.ml");
  Alcotest.(check bool) "remy controller in scope" true
    (Lint.in_decision_scope "lib/remy/remy_cc.ml");
  Alcotest.(check bool) "swarm in scope" true
    (Lint.in_decision_scope "lib/experiments/swarm.ml");
  Alcotest.(check bool) "phi_client in scope" true
    (Lint.in_decision_scope "lib/core/phi_client.ml");
  Alcotest.(check bool) "compiler exempt" false
    (Lint.in_decision_scope "lib/remy/compiled_table.ml");
  Alcotest.(check bool) "policy compiler exempt" false
    (Lint.in_decision_scope "lib/core/policy.ml");
  Alcotest.(check bool) "trainer exempt" false (Lint.in_decision_scope "lib/remy/trainer.ml");
  Alcotest.(check bool) "tests exempt" false (Lint.in_decision_scope "test/test_remy.ml")

let test_in_transport_scope () =
  Alcotest.(check bool) "experiments in scope" true
    (Lint.in_transport_scope "lib/experiments/scenario.ml");
  Alcotest.(check bool) "core in scope" true (Lint.in_transport_scope "lib/core/phi_client.ml");
  Alcotest.(check bool) "tcp exempt" false (Lint.in_transport_scope "lib/tcp/sender.ml");
  Alcotest.(check bool) "net exempt" false (Lint.in_transport_scope "lib/net/node.ml");
  Alcotest.(check bool) "test exempt" false (Lint.in_transport_scope "test/test_tcp.ml")

(* {2 Fixture corpus: every rule, paired good/bad, exact violations}

   The files under [lint_fixtures/] are data, not build inputs; each is
   linted under a pretend path so the rule's scoping applies.  The bad
   fixtures seed the shapes the token engine provably misses (cross-line
   use-after-release, nested mutable globals, allocation two calls below
   a hot entry point); the good twins must stay perfectly clean. *)

let read_fixture name =
  let ic = open_in_bin (Filename.concat "lint_fixtures" name) in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let locs_of vs = List.map (fun v -> (v.Lint.rule, v.Lint.line)) vs

let check_locs msg expected vs =
  Alcotest.(check (list (pair string int))) msg expected (locs_of vs)

let fixture_lint ~path name = Lint.lint_source ~path (read_fixture name)

(* Multi-file groups: every file in the group maps to lib/fix/<name>. *)
let fixture_tree group names =
  List.map (fun n -> ("lib/fix/" ^ n, read_fixture (Filename.concat group n))) names

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let single_file_cases =
  [
    ("obj_magic", "lib/fake/fixture.ml", [ ("obj-magic", 2) ]);
    ("poly_compare", "lib/fake/fixture.ml", [ ("poly-compare", 2) ]);
    ("float_equal", "lib/fake/fixture.ml", [ ("float-equal", 2) ]);
    ("list_nth", "lib/fake/fixture.ml", [ ("list-nth", 2) ]);
    ("hashtbl_find", "lib/fake/fixture.ml", [ ("hashtbl-find", 2) ]);
    ("failwith", "lib/fake/fixture.ml", [ ("failwith", 2) ]);
    ("exit", "lib/fake/fixture.ml", [ ("exit", 2) ]);
    (* Nested and indented bindings: only the AST engine sees them. *)
    ("domain_global", "lib/runner/fixture.ml",
     [ ("domain-global", 6); ("domain-global", 9) ]);
    ("hot_queue", "lib/net/fixture.ml", [ ("hot-queue", 2) ]);
    ("packet_escape", "lib/net/fixture.ml",
     [ ("packet-escape", 2); ("packet-escape", 4) ]);
    ("transport_unified", "lib/experiments/fixture.ml",
     [ ("transport-unified", 2) ]);
    ("interpreted_lookup", "lib/tcp/fixture.ml",
     [ ("interpreted-lookup", 3); ("interpreted-lookup", 4) ]);
    (* Release and use lines apart: the token packet-escape check stays
       silent (no packet-escape entry expected) — the lifetime pass owns
       all three findings. *)
    ("handle_lifetime", "lib/net/fixture.ml",
     [ ("handle-lifetime", 6); ("handle-lifetime", 10); ("handle-lifetime", 13) ]);
  ]

let test_fixture_pairs () =
  List.iter
    (fun (stem, path, expected) ->
      check_locs (stem ^ " bad") expected (fixture_lint ~path (stem ^ "_bad.ml"));
      check_locs (stem ^ " good") [] (fixture_lint ~path (stem ^ "_good.ml")))
    single_file_cases

let test_fixture_mli_doc () =
  check_locs "mli-doc bad" [ ("mli-doc", 1) ]
    (fixture_lint ~path:"lib/fake/fixture.mli" "mli_doc_bad.mli");
  check_locs "mli-doc good" []
    (fixture_lint ~path:"lib/fake/fixture.mli" "mli_doc_good.mli")

let test_fixture_missing_mli () =
  let bad = Lint.lint_tree (fixture_tree "missing_mli_bad" [ "thing.ml" ]) in
  check_locs "missing-mli bad" [ ("missing-mli", 1) ] bad;
  (match bad with
  | [ v ] -> Alcotest.(check string) "names the file" "lib/fix/thing.ml" v.Lint.file
  | _ -> Alcotest.fail "expected exactly one violation");
  check_locs "missing-mli good" []
    (Lint.lint_tree (fixture_tree "missing_mli_good" [ "thing.ml"; "thing.mli" ]))

let hot_alloc_files = [ "link.ml"; "link.mli"; "chain.ml"; "chain.mli" ]

let test_fixture_hot_alloc_chain () =
  (* The seeded bug: a closure allocated two calls below Link.send.  The
     token engine has no cross-module view at all; the effect pass must
     report it at the allocation site with the full call chain. *)
  let vs = Lint.lint_tree (fixture_tree "hot_alloc_bad" hot_alloc_files) in
  check_locs "closure two calls deep" [ ("hot-alloc", 3) ] vs;
  (match vs with
  | [ v ] ->
    Alcotest.(check string) "at the allocation site" "lib/fix/chain.ml" v.Lint.file;
    Alcotest.(check bool) "chain rendered" true
      (contains v.Lint.message "Link.send -> Chain.stage1 -> Chain.stage2")
  | _ -> Alcotest.fail "expected exactly one violation");
  check_locs "hoisted twin is clean" []
    (Lint.lint_tree (fixture_tree "hot_alloc_good" hot_alloc_files))

let domain_race_files =
  [ "runner.ml"; "runner.mli"; "work.ml"; "work.mli"; "metrics.ml"; "metrics.mli" ]

let test_fixture_domain_race () =
  (* The seeded bug: a nested, indented mutable global in one module,
     bumped by a job function two modules away from the Pool.map site. *)
  let vs = Lint.lint_tree (fixture_tree "domain_race_bad" domain_race_files) in
  check_locs "nested global reachable from pool job" [ ("domain-race", 3) ] vs;
  (match vs with
  | [ v ] ->
    Alcotest.(check string) "at the global's definition" "lib/fix/metrics.ml" v.Lint.file;
    Alcotest.(check bool) "chain rendered" true
      (contains v.Lint.message "Runner.launch -> Work.step -> Metrics.bump")
  | _ -> Alcotest.fail "expected exactly one violation");
  check_locs "per-job twin is clean" []
    (Lint.lint_tree (fixture_tree "domain_race_good" domain_race_files))

let test_fixture_pdes_race () =
  (* Same rule, the parallel-DES entry points: an island drain callback
     registered through Pdes.on_drain runs on a worker domain, so a
     module-level mutable reachable from it is a race. *)
  let vs = Lint.lint_tree (fixture_tree "pdes_race_bad" domain_race_files) in
  check_locs "global reachable from island drain" [ ("domain-race", 3) ] vs;
  (match vs with
  | [ v ] ->
    Alcotest.(check string) "at the global's definition" "lib/fix/metrics.ml" v.Lint.file;
    Alcotest.(check bool) "chain rendered" true
      (contains v.Lint.message "Runner.wire -> Work.step -> Metrics.bump")
  | _ -> Alcotest.fail "expected exactly one violation");
  check_locs "per-island twin is clean" []
    (Lint.lint_tree (fixture_tree "pdes_race_good" domain_race_files))

let test_fixture_dynamics_race () =
  (* Same rule, the scenario-plane entry points: a callback scripted
     through Dynamics.at / Dynamics.every runs inside a pool-fanned
     matrix cell, so a module-level mutable reachable from it is a
     race. *)
  let vs = Lint.lint_tree (fixture_tree "dynamics_race_bad" domain_race_files) in
  check_locs "global reachable from scripted event" [ ("domain-race", 3) ] vs;
  (match vs with
  | [ v ] ->
    Alcotest.(check string) "at the global's definition" "lib/fix/metrics.ml" v.Lint.file;
    Alcotest.(check bool) "chain rendered" true
      (contains v.Lint.message "Work.step -> Metrics.bump")
  | _ -> Alcotest.fail "expected exactly one violation");
  check_locs "per-cell twin is clean" []
    (Lint.lint_tree (fixture_tree "dynamics_race_good" domain_race_files))

(* {2 --json report schema} *)

let test_json_report_roundtrip () =
  let module J = Phi_util.Json in
  let vs =
    Lint.lint_source ~path:"lib/fake/fixture.ml"
      "let f x = Obj.magic x\nlet g h k = Hashtbl.find h k\n"
  in
  let report = Lint.json_report vs in
  match J.of_string (J.to_string report) with
  | Error e -> Alcotest.fail ("report does not parse back: " ^ e)
  | Ok parsed ->
    Alcotest.(check bool) "round-trips structurally" true (parsed = report);
    (match J.member "total" parsed with
    | Some (J.Int n) -> Alcotest.(check int) "total" 2 n
    | _ -> Alcotest.fail "total missing or mistyped");
    (match J.member "violations" parsed with
    | Some (J.List [ first; _ ]) ->
      (match (J.member "file" first, J.member "line" first, J.member "rule" first,
              J.member "message" first) with
      | Some (J.String f), Some (J.Int l), Some (J.String r), Some (J.String m) ->
        Alcotest.(check string) "file" "lib/fake/fixture.ml" f;
        Alcotest.(check int) "line" 1 l;
        Alcotest.(check string) "rule" "obj-magic" r;
        Alcotest.(check bool) "message non-empty" true (String.length m > 0)
      | _ -> Alcotest.fail "violation entry missing a field")
    | _ -> Alcotest.fail "violations missing or wrong arity");
    (match J.member "by_rule" parsed with
    | Some (J.Obj [ ("hashtbl-find", J.Int 1); ("obj-magic", J.Int 1) ]) -> ()
    | _ -> Alcotest.fail "by_rule counts wrong");
    (match J.member "by_file" parsed with
    | Some (J.Obj [ ("lib/fake/fixture.ml", J.Int 2) ]) -> ()
    | _ -> Alcotest.fail "by_file counts wrong")

let test_every_rule_has_description () =
  Alcotest.(check bool) "non-empty rule list" true (List.length Lint.rules >= 10);
  List.iter
    (fun (name, desc) ->
      Alcotest.(check bool)
        (Printf.sprintf "rule %s described" name)
        true
        (String.length name > 0 && String.length desc > 0))
    Lint.rules

let suite =
  [
    Alcotest.test_case "obj-magic fires" `Quick test_obj_magic_fires;
    Alcotest.test_case "poly-compare fires" `Quick test_poly_compare_fires;
    Alcotest.test_case "float-equal fires" `Quick test_float_equal_fires;
    Alcotest.test_case "list-nth fires" `Quick test_list_nth_fires;
    Alcotest.test_case "hashtbl-find fires" `Quick test_hashtbl_find_fires;
    Alcotest.test_case "failwith is library-only" `Quick test_failwith_fires_in_lib_only;
    Alcotest.test_case "exit is library-only" `Quick test_exit_fires_in_lib_only;
    Alcotest.test_case "clean code passes" `Quick test_clean_code_passes;
    Alcotest.test_case "float bindings not flagged" `Quick test_float_binding_not_flagged;
    Alcotest.test_case "comments and strings immune" `Quick test_comments_and_strings_immune;
    Alcotest.test_case "line numbers" `Quick test_line_numbers;
    Alcotest.test_case "allow on same line" `Quick test_allow_same_line;
    Alcotest.test_case "allow on previous line" `Quick test_allow_previous_line;
    Alcotest.test_case "allow is rule-specific" `Quick test_allow_is_rule_specific;
    Alcotest.test_case "allow does not leak" `Quick test_allow_does_not_leak_to_later_lines;
    Alcotest.test_case "mli-doc fires" `Quick test_mli_doc_fires;
    Alcotest.test_case "mli-doc satisfied" `Quick test_mli_doc_satisfied;
    Alcotest.test_case "missing-mli fires" `Quick test_missing_mli_fires;
    Alcotest.test_case "missing-mli is library-only" `Quick test_missing_mli_lib_only;
    Alcotest.test_case "in_lib classification" `Quick test_in_lib;
    Alcotest.test_case "tree lint sorted and rendered" `Quick test_tree_sorted_and_rendered;
    Alcotest.test_case "domain-global fires" `Quick test_domain_global_fires;
    Alcotest.test_case "domain-global scope" `Quick test_domain_global_scope;
    Alcotest.test_case "domain-global local state ok" `Quick test_domain_global_silent_on_local_state;
    Alcotest.test_case "domain-global allow" `Quick test_domain_global_allow;
    Alcotest.test_case "in_domain_pool classification" `Quick test_in_domain_pool;
    Alcotest.test_case "hot-queue fires" `Quick test_hot_queue_fires;
    Alcotest.test_case "hot-queue scope" `Quick test_hot_queue_scope;
    Alcotest.test_case "hot-queue allow" `Quick test_hot_queue_allow;
    Alcotest.test_case "in_hot_path classification" `Quick test_in_hot_path;
    Alcotest.test_case "packet-escape fires on legacy constructors" `Quick
      test_packet_escape_fires_on_legacy_constructors;
    Alcotest.test_case "packet-escape fires on mutable handle field" `Quick
      test_packet_escape_fires_on_mutable_handle_field;
    Alcotest.test_case "packet-escape fires on use-after-release" `Quick
      test_packet_escape_fires_on_use_after_release;
    Alcotest.test_case "packet-escape silent on contract code" `Quick
      test_packet_escape_silent_on_contract_code;
    Alcotest.test_case "packet-escape scope" `Quick test_packet_escape_scope;
    Alcotest.test_case "packet-escape allow" `Quick test_packet_escape_allow;
    Alcotest.test_case "transport-unified fires" `Quick test_transport_unified_fires;
    Alcotest.test_case "transport-unified scope" `Quick test_transport_unified_scope;
    Alcotest.test_case "transport-unified allow" `Quick test_transport_unified_allow;
    Alcotest.test_case "in_transport_scope classification" `Quick test_in_transport_scope;
    Alcotest.test_case "interpreted-lookup fires" `Quick test_interpreted_lookup_fires;
    Alcotest.test_case "interpreted-lookup compiled forms pass" `Quick
      test_interpreted_lookup_compiled_forms_pass;
    Alcotest.test_case "interpreted-lookup scope" `Quick test_interpreted_lookup_scope;
    Alcotest.test_case "interpreted-lookup allow" `Quick test_interpreted_lookup_allow;
    Alcotest.test_case "in_decision_scope classification" `Quick test_in_decision_scope;
    Alcotest.test_case "every rule described" `Quick test_every_rule_has_description;
    Alcotest.test_case "fixture corpus: paired good/bad" `Quick test_fixture_pairs;
    Alcotest.test_case "fixture corpus: mli-doc" `Quick test_fixture_mli_doc;
    Alcotest.test_case "fixture corpus: missing-mli" `Quick test_fixture_missing_mli;
    Alcotest.test_case "fixture corpus: hot-alloc chain" `Quick test_fixture_hot_alloc_chain;
    Alcotest.test_case "fixture corpus: domain-race" `Quick test_fixture_domain_race;
    Alcotest.test_case "fixture corpus: pdes domain-race" `Quick test_fixture_pdes_race;
    Alcotest.test_case "fixture corpus: dynamics domain-race" `Quick test_fixture_dynamics_race;
    Alcotest.test_case "json report round-trips" `Quick test_json_report_roundtrip;
  ]
