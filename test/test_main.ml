(* The sanitize-leak suite must run last: with PHI_SANITIZE=1 it proves
   that every suite before it ran without tripping a simulation
   invariant outside of the deliberate with_capture injections. *)
let sanitize_leak_suite =
  [
    Alcotest.test_case "no invariant violations leaked" `Quick (fun () ->
        let report = Phi_sim.Invariant.report () in
        Alcotest.(check string) "empty report" "" report;
        Alcotest.(check int) "zero violations" 0 (Phi_sim.Invariant.count ()));
  ]

let () =
  Alcotest.run "phi"
    [
      ("util", Test_util.suite);
      ("sim", Test_sim.suite);
      ("net", Test_net.suite);
      ("tcp", Test_tcp.suite);
      ("source", Test_source.suite);
      ("remy", Test_remy.suite);
      ("compiled", Test_compiled.suite);
      ("core", Test_phi_core.suite);
      ("wire", Test_wire.suite);
      ("context-plane", Test_context_plane.suite);
      ("workload", Test_workload.suite);
      ("ipfix", Test_ipfix.suite);
      ("diagnosis", Test_diagnosis.suite);
      ("predict", Test_predict.suite);
      ("experiments", Test_experiments.suite);
      ("swarm", Test_swarm.suite);
      ("pdes", Test_pdes.suite);
      ("runner", Test_runner.suite);
      ("check", Test_check.suite);
      ("lint", Test_lint.suite);
      ("invariant", Test_invariant.suite);
      ("sanitize-leak", sanitize_leak_suite);
    ]
