(* Tests for phi_net: pooled packets, links, nodes, topology, monitors. *)

module Engine = Phi_sim.Engine
module Packet = Phi_net.Packet
module Link = Phi_net.Link
module Node = Phi_net.Node
module Topology = Phi_net.Topology
module Monitor = Phi_net.Monitor
module Prng = Phi_util.Prng

let data pool ~seq = Packet.acquire_data pool ~flow:0 ~src:0 ~dst:1 ~seq ~now:0. ~retransmit:false

(* {2 Packet pool} *)

let test_packet_constructors () =
  let pool = Packet.create_pool () in
  let d = data pool ~seq:7 in
  Alcotest.(check bool) "data is data" true (Packet.is_data pool d);
  Alcotest.(check int) "data size" Packet.mss (Packet.size pool d);
  Alcotest.(check int) "data seq" 7 (Packet.seq pool d);
  let a =
    Packet.acquire_ack pool ~flow:0 ~src:1 ~dst:0 ~next_expected:8 ~has_echo:true
      ~echo_sent_at:1. ~echo_tx_time:1. ~ece:false ~now:2.
  in
  Packet.add_sack pool a ~lo:10 ~hi:12;
  Alcotest.(check bool) "ack is not data" false (Packet.is_data pool a);
  Alcotest.(check int) "ack size" Packet.ack_size (Packet.size pool a);
  Alcotest.(check int) "cumulative seq" 8 (Packet.seq pool a);
  Alcotest.(check int) "sack count" 1 (Packet.sack_count pool a);
  Alcotest.(check int) "sack lo" 10 (Packet.sack_lo pool a 0);
  Alcotest.(check int) "sack hi" 12 (Packet.sack_hi pool a 0)

let test_packet_sack_limit () =
  let pool = Packet.create_pool () in
  let a =
    Packet.acquire_ack pool ~flow:0 ~src:1 ~dst:0 ~next_expected:0 ~has_echo:false
      ~echo_sent_at:0. ~echo_tx_time:0. ~ece:false ~now:0.
  in
  for i = 0 to Packet.max_sack_blocks - 1 do
    Packet.add_sack pool a ~lo:(2 * i) ~hi:((2 * i) + 1)
  done;
  let raised =
    try
      Packet.add_sack pool a ~lo:100 ~hi:101;
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "sack limit enforced" true raised

let test_packet_recycling () =
  let pool = Packet.create_pool () in
  let d = data pool ~seq:1 in
  Alcotest.(check int) "one cell in use" 1 (Packet.in_use pool);
  Packet.release pool d;
  Alcotest.(check int) "cell returned" 0 (Packet.in_use pool);
  (* The freed cell is reused: the high-water mark stays at one across
     many acquire/release cycles, and every reincarnation starts from a
     clean slate (fresh seq, no stale SACK blocks). *)
  for i = 0 to 99 do
    let p = data pool ~seq:i in
    Alcotest.(check int) "reinitialized seq" i (Packet.seq pool p);
    Alcotest.(check int) "no stale sack" 0 (Packet.sack_count pool p);
    Packet.release pool p
  done;
  Alcotest.(check int) "high water stays 1" 1 (Packet.high_water pool);
  Alcotest.(check int) "nothing leaked" 0 (Packet.in_use pool)

let test_packet_double_release_rejected () =
  if Phi_sim.Invariant.enabled () then
    (* Under PHI_SANITIZE the stale release is recorded, not raised;
       capture it so the leak check stays clean (the armed path is
       covered in test_invariant.ml). *)
    let (), vs =
      Phi_sim.Invariant.with_capture (fun () ->
          let pool = Packet.create_pool () in
          let d = data pool ~seq:0 in
          Packet.release pool d;
          Packet.release pool d)
    in
    Alcotest.(check (list string))
      "double release recorded" [ "packet-double-release" ]
      (List.map (fun v -> v.Phi_sim.Invariant.rule) vs)
  else
    let pool = Packet.create_pool () in
    let d = data pool ~seq:0 in
    Packet.release pool d;
    let raised = try Packet.release pool d; false with Invalid_argument _ -> true in
    Alcotest.(check bool) "double release rejected" true raised

(* {2 Link} *)

let make_link ?(bandwidth_bps = 8e6) ?(delay_s = 0.01) ?(capacity_pkts = 4) engine pool =
  Link.create engine pool ~bandwidth_bps ~delay_s ~capacity_pkts

let test_link_delivery_timing () =
  let engine = Engine.create () in
  let pool = Packet.create_pool () in
  let link = make_link engine pool in
  let arrived = ref (-1.) in
  Link.set_receiver link (fun p ->
      arrived := Engine.now engine;
      Packet.release pool p);
  Link.send link (data pool ~seq:0);
  Engine.run engine;
  (* 1500 B at 8 Mb/s = 1.5 ms serialization, + 10 ms propagation. *)
  Alcotest.(check (float 1e-9)) "tx + prop" 0.0115 !arrived;
  Alcotest.(check int) "delivered count" 1 (Link.packets_delivered link);
  Alcotest.(check int) "bytes" Packet.mss (Link.bytes_delivered link);
  Alcotest.(check int) "no cell leaked" 0 (Packet.in_use pool)

let test_link_fifo_order () =
  let engine = Engine.create () in
  let pool = Packet.create_pool () in
  let link = make_link engine pool in
  let order = ref [] in
  Link.set_receiver link (fun p ->
      order := Packet.seq pool p :: !order;
      Packet.release pool p);
  for seq = 0 to 3 do
    Link.send link (data pool ~seq)
  done;
  Engine.run engine;
  Alcotest.(check (list int)) "fifo" [ 0; 1; 2; 3 ] (List.rev !order)

let test_link_drop_tail () =
  let engine = Engine.create () in
  let pool = Packet.create_pool () in
  let link = make_link ~capacity_pkts:2 engine pool in
  Link.set_receiver link (fun p -> Packet.release pool p);
  for seq = 0 to 4 do
    Link.send link (data pool ~seq)
  done;
  (* Queue capacity 2: packets 0,1 accepted; 2..4 dropped (no service
     between sends since no events ran). *)
  Alcotest.(check int) "drops" 3 (Link.drops link);
  Alcotest.(check int) "offered" 5 (Link.packets_offered link);
  (* A dropped packet goes straight back to the free list. *)
  Alcotest.(check int) "drops released" 2 (Packet.in_use pool);
  Engine.run engine;
  Alcotest.(check int) "delivered rest" 2 (Link.packets_delivered link);
  Alcotest.(check int) "all cells home" 0 (Packet.in_use pool)

let test_link_busy_time_utilization () =
  let engine = Engine.create () in
  let pool = Packet.create_pool () in
  let link = make_link ~bandwidth_bps:(float_of_int (Packet.mss * 8)) ~delay_s:0. engine pool in
  Link.set_receiver link (fun p -> Packet.release pool p);
  (* 1 packet/s serialization: 2 packets = 2 s busy. *)
  Link.send link (data pool ~seq:0);
  Link.send link (data pool ~seq:1);
  Engine.run engine;
  Alcotest.(check (float 1e-9)) "busy time" 2. (Link.busy_time link)

let test_link_queue_wait () =
  let engine = Engine.create () in
  let pool = Packet.create_pool () in
  let link = make_link ~bandwidth_bps:(float_of_int (Packet.mss * 8)) ~delay_s:0. engine pool in
  Link.set_receiver link (fun p -> Packet.release pool p);
  Link.send link (data pool ~seq:0);
  Link.send link (data pool ~seq:1);
  Engine.run engine;
  (* Second packet waited exactly one serialization time. *)
  Alcotest.(check (float 1e-9)) "wait" 1. (Link.total_queue_wait link)

let test_link_fault_injection () =
  let engine = Engine.create () in
  let pool = Packet.create_pool () in
  let link = make_link ~capacity_pkts:10_000 engine pool in
  Link.set_receiver link (fun p -> Packet.release pool p);
  Link.set_fault_injection link ~rng:(Prng.create ~seed:1) ~drop_probability:0.5;
  for seq = 0 to 999 do
    Link.send link (data pool ~seq)
  done;
  let drops = Link.drops link in
  Alcotest.(check bool) "about half dropped" true (drops > 400 && drops < 600);
  Engine.run engine;
  Alcotest.(check int) "every cell recycled" 0 (Packet.in_use pool)

(* {2 Runtime dynamics (link flaps, rate changes, delay jitter)} *)

(* 1 packet/s serialization so service boundaries land on whole seconds. *)
let pkt_per_s = float_of_int (Packet.mss * 8)

let test_link_flap_freezes_queue () =
  let engine = Engine.create () in
  let pool = Packet.create_pool () in
  let link = make_link ~bandwidth_bps:pkt_per_s ~delay_s:0. ~capacity_pkts:10 engine pool in
  let arrivals = ref [] in
  Link.set_receiver link (fun p ->
      arrivals := (Packet.seq pool p, Engine.now engine) :: !arrivals;
      Packet.release pool p);
  for seq = 0 to 2 do
    Link.send link (data pool ~seq)
  done;
  (* Down mid-service of packet 0: it completes (t=1) and delivers;
     packets 1-2 freeze.  An arrival while down is dropped.  Up at t=5:
     the frozen queue resumes, delivering at t=6 and t=7. *)
  ignore (Engine.schedule_at engine ~time:0.5 (fun () -> Link.set_down link));
  ignore (Engine.schedule_at engine ~time:1.5 (fun () -> Link.send link (data pool ~seq:3)));
  ignore (Engine.schedule_at engine ~time:5.0 (fun () -> Link.set_up link));
  Engine.run engine;
  Alcotest.(check (list (pair int (float 1e-9))))
    "in-service completes, queue freezes then resumes"
    [ (0, 1.0); (1, 6.0); (2, 7.0) ]
    (List.rev !arrivals);
  Alcotest.(check int) "arrival while down dropped" 1 (Link.drops link);
  Alcotest.(check int) "conservation" (Link.packets_offered link)
    (Link.packets_delivered link + Link.drops link + Link.queue_length link);
  Alcotest.(check bool) "back up" true (Link.is_up link);
  Alcotest.(check int) "no cell leaked" 0 (Packet.in_use pool)

let test_link_set_up_idempotent () =
  let engine = Engine.create () in
  let pool = Packet.create_pool () in
  let link = make_link ~bandwidth_bps:pkt_per_s ~delay_s:0. engine pool in
  Link.set_receiver link (fun p -> Packet.release pool p);
  Link.set_up link;
  (* Calling set_up on an already-up link must not double-start service. *)
  Link.send link (data pool ~seq:0);
  Link.set_up link;
  Engine.run engine;
  Alcotest.(check int) "delivered once" 1 (Link.packets_delivered link)

let test_link_rate_change_mid_transmission () =
  let engine = Engine.create () in
  let pool = Packet.create_pool () in
  let link = make_link ~bandwidth_bps:pkt_per_s ~delay_s:0. engine pool in
  let arrivals = ref [] in
  Link.set_receiver link (fun p ->
      arrivals := Engine.now engine :: !arrivals;
      Packet.release pool p);
  Link.send link (data pool ~seq:0);
  Link.send link (data pool ~seq:1);
  (* Double the rate while packet 0 is in service: it still finishes at
     the old rate (t=1); packet 1 serializes at the new rate (0.5 s). *)
  ignore (Engine.schedule_at engine ~time:0.5 (fun () -> Link.set_rate_bps link (2. *. pkt_per_s)));
  Engine.run engine;
  Alcotest.(check (list (float 1e-9))) "old rate finishes, new rate follows" [ 1.0; 1.5 ]
    (List.rev !arrivals)

let test_link_delay_jitter_never_reorders () =
  let engine = Engine.create () in
  let pool = Packet.create_pool () in
  (* Fast serialization (1 ms) with long propagation (100 ms). *)
  let link =
    make_link ~bandwidth_bps:(1000. *. pkt_per_s) ~delay_s:0.1 ~capacity_pkts:10 engine pool
  in
  let arrivals = ref [] in
  Link.set_receiver link (fun p ->
      arrivals := (Packet.seq pool p, Engine.now engine) :: !arrivals;
      Packet.release pool p);
  Link.send link (data pool ~seq:0);
  Link.send link (data pool ~seq:1);
  (* Shrink the delay to zero between the two serializations: packet 1
     would land at t=0.002, overtaking packet 0 (due t=0.101).  The
     clamp pins it to packet 0's delivery instant instead. *)
  ignore (Engine.schedule_at engine ~time:0.0015 (fun () -> Link.set_delay_s link 0.));
  Engine.run engine;
  Alcotest.(check (list (pair int (float 1e-9))))
    "fifo preserved under shrinking delay"
    [ (0, 0.101); (1, 0.101) ]
    (List.rev !arrivals)

let test_link_delay_increase_takes_effect () =
  let engine = Engine.create () in
  let pool = Packet.create_pool () in
  let link = make_link ~bandwidth_bps:(1000. *. pkt_per_s) ~delay_s:0.01 engine pool in
  let arrivals = ref [] in
  Link.set_receiver link (fun p ->
      arrivals := Engine.now engine :: !arrivals;
      Packet.release pool p);
  Link.send link (data pool ~seq:0);
  ignore (Engine.schedule_at engine ~time:0.0015 (fun () -> Link.set_delay_s link 0.05));
  ignore (Engine.schedule_at engine ~time:0.002 (fun () -> Link.send link (data pool ~seq:1)));
  Engine.run engine;
  (* First packet at the old delay, second at the new one. *)
  Alcotest.(check (list (float 1e-9))) "new delay applies to later packets" [ 0.011; 0.053 ]
    (List.rev !arrivals)

let test_link_dynamics_validation () =
  let engine = Engine.create () in
  let pool = Packet.create_pool () in
  let link = make_link engine pool in
  let raised f = try f (); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "zero rate" true (raised (fun () -> Link.set_rate_bps link 0.));
  Alcotest.(check bool) "nan rate" true (raised (fun () -> Link.set_rate_bps link Float.nan));
  Alcotest.(check bool) "negative delay" true (raised (fun () -> Link.set_delay_s link (-1.)));
  Alcotest.(check bool) "nan delay" true (raised (fun () -> Link.set_delay_s link Float.nan))

let test_link_stats_window () =
  let engine = Engine.create () in
  let pool = Packet.create_pool () in
  let link = make_link ~bandwidth_bps:pkt_per_s ~delay_s:0. ~capacity_pkts:2 engine pool in
  Link.set_receiver link (fun p -> Packet.release pool p);
  Link.send link (data pool ~seq:0);
  Link.send link (data pool ~seq:1);
  Engine.run engine;
  let w = Link.window_open link in
  Alcotest.(check int) "fresh window sees nothing" 0 (Link.window_delivered link w);
  Alcotest.(check (float 0.)) "fresh window idle" 0. (Link.window_busy_s link w);
  (* Second half: 2 accepted (one waits a full service time), 1 dropped. *)
  for seq = 2 to 4 do
    Link.send link (data pool ~seq)
  done;
  Engine.run engine;
  Alcotest.(check int) "delta delivered" 2 (Link.window_delivered link w);
  Alcotest.(check int) "delta offered" 3 (Link.window_offered link w);
  Alcotest.(check int) "delta drops" 1 (Link.window_drops link w);
  Alcotest.(check int) "delta bytes" (2 * Packet.mss) (Link.window_bytes_delivered link w);
  Alcotest.(check (float 1e-9)) "delta busy" 2. (Link.window_busy_s link w);
  Alcotest.(check (float 1e-9)) "mean queue wait" 0.5 (Link.window_queue_delay_s link w);
  Alcotest.(check (float 1e-9)) "loss rate" (1. /. 3.) (Link.window_loss_rate link w);
  Alcotest.(check (float 1e-9))
    "throughput over 2s"
    (float_of_int (2 * Packet.mss * 8) /. 2.)
    (Link.window_throughput_bps link w ~elapsed_s:2.);
  Alcotest.(check (float 1e-9)) "utilization" 1. (Link.window_utilization link w ~elapsed_s:2.)

let test_link_validation () =
  let engine = Engine.create () in
  let pool = Packet.create_pool () in
  let raised f = try f (); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "bw" true
    (raised (fun () ->
         ignore (Link.create engine pool ~bandwidth_bps:0. ~delay_s:0. ~capacity_pkts:1)));
  Alcotest.(check bool) "capacity" true
    (raised (fun () ->
         ignore (Link.create engine pool ~bandwidth_bps:1. ~delay_s:0. ~capacity_pkts:0)))

(* {2 RED} *)

let test_red_no_drops_below_min_threshold () =
  let engine = Engine.create () in
  let pool = Packet.create_pool () in
  let link = make_link ~capacity_pkts:100 engine pool in
  Link.set_receiver link (fun p -> Packet.release pool p);
  Link.set_discipline link ~rng:(Prng.create ~seed:1)
    (Link.Red
       {
         Link.min_threshold = 50;
         max_threshold = 90;
         max_probability = 0.1;
         weight = 0.5;
         mark_ecn = false;
       });
  for seq = 0 to 9 do
    Link.send link (data pool ~seq)
  done;
  Alcotest.(check int) "no early drops" 0 (Link.drops link)

let test_red_drops_above_max_threshold () =
  let engine = Engine.create () in
  let pool = Packet.create_pool () in
  let link = make_link ~capacity_pkts:1000 engine pool in
  Link.set_receiver link (fun p -> Packet.release pool p);
  (* weight 1.0: the average tracks the instantaneous queue exactly. *)
  Link.set_discipline link ~rng:(Prng.create ~seed:2)
    (Link.Red
       {
         Link.min_threshold = 5;
         max_threshold = 10;
         max_probability = 0.1;
         weight = 1.0;
         mark_ecn = false;
       });
  for seq = 0 to 99 do
    Link.send link (data pool ~seq)
  done;
  (* Once the queue average passes 10, every arrival is dropped. *)
  Alcotest.(check bool) "forced drops" true (Link.drops link >= 85);
  Alcotest.(check bool) "queue capped near max threshold" true (Link.queue_length link <= 12)

let test_red_probabilistic_band () =
  let engine = Engine.create () in
  let pool = Packet.create_pool () in
  let link =
    (* Slow link so the queue sits in the band while we offer arrivals. *)
    Link.create engine pool ~bandwidth_bps:1e3 ~delay_s:0. ~capacity_pkts:10_000
  in
  Link.set_receiver link (fun p -> Packet.release pool p);
  Link.set_discipline link ~rng:(Prng.create ~seed:3)
    (Link.Red
       {
         Link.min_threshold = 5;
         max_threshold = 10_000;
         max_probability = 0.2;
         weight = 1.0;
         mark_ecn = false;
       });
  for seq = 0 to 999 do
    Link.send link (data pool ~seq)
  done;
  let drops = Link.drops link in
  (* In the band the drop probability ramps towards 0.2 but stays tiny
     near min_threshold: expect some drops, far from all. *)
  Alcotest.(check bool) "some early drops" true (drops > 0);
  Alcotest.(check bool) "not everything dropped" true (drops < 500)

let test_red_validation () =
  let engine = Engine.create () in
  let pool = Packet.create_pool () in
  let link = make_link engine pool in
  let raised =
    try
      Link.set_discipline link ~rng:(Prng.create ~seed:4)
        (Link.Red
           {
             Link.min_threshold = 10;
             max_threshold = 5;
             max_probability = 0.1;
             weight = 0.5;
             mark_ecn = false;
           });
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "bad thresholds rejected" true raised

let test_red_keeps_cubic_queue_short_end_to_end () =
  let run ~red =
    let engine = Engine.create () in
    let d = Topology.dumbbell engine { Topology.paper_spec with Topology.n = 1 } in
    if red then
      Link.set_discipline d.Topology.bottleneck ~rng:(Prng.create ~seed:5)
        (Link.Red
           (Link.default_red ~capacity_pkts:(Link.capacity_pkts d.Topology.bottleneck) ()));
    let _recv =
      Phi_tcp.Receiver.create engine ~node:d.Topology.receivers.(0) ~flow:0 ~peer:0
    in
    let sender =
      Phi_tcp.Sender.create engine
        ~node:d.Topology.senders.(0)
        ~flow:0
        ~dst:(Topology.receiver_id d 0)
        ~cc:(Phi_tcp.Cubic.make Phi_tcp.Cubic.default_params)
        ~total_segments:Phi_tcp.Sender.persistent_total ()
    in
    Phi_tcp.Sender.start sender;
    Engine.run ~until:30. engine;
    let bneck = d.Topology.bottleneck in
    Link.total_queue_wait bneck /. float_of_int (Stdlib.max 1 (Link.packets_delivered bneck))
  in
  let droptail = run ~red:false and red = run ~red:true in
  Alcotest.(check bool) "red holds a much shorter queue" true (red < droptail /. 3.)

(* {2 Node} *)

let test_node_local_delivery () =
  let engine = Engine.create () in
  let pool = Packet.create_pool () in
  let node = Node.create engine pool ~id:1 in
  let got = ref [] in
  Node.bind_flow node ~flow:0 (fun p -> got := Packet.seq pool p :: !got);
  Node.receive node (data pool ~seq:5);
  Alcotest.(check (list int)) "delivered locally" [ 5 ] !got;
  (* The node releases a locally delivered packet once the handler
     returns. *)
  Alcotest.(check int) "cell recycled after handler" 0 (Packet.in_use pool);
  Node.unbind_flow node ~flow:0;
  Node.receive node (data pool ~seq:6);
  Alcotest.(check int) "unclaimed counted" 1 (Node.unclaimed_deliveries node);
  Alcotest.(check int) "unclaimed still recycled" 0 (Packet.in_use pool)

let test_node_forwarding () =
  let engine = Engine.create () in
  let pool = Packet.create_pool () in
  let a = Node.create engine pool ~id:0 in
  let b = Node.create engine pool ~id:1 in
  let link = make_link engine pool in
  Link.set_receiver link (Node.receive b);
  Node.add_route a ~dst:1 link;
  let got = ref 0 in
  Node.bind_flow b ~flow:0 (fun _ -> incr got);
  Node.receive a (data pool ~seq:0);
  Engine.run engine;
  Alcotest.(check int) "forwarded" 1 !got

let test_node_default_route () =
  let engine = Engine.create () in
  let pool = Packet.create_pool () in
  let a = Node.create engine pool ~id:0 in
  let b = Node.create engine pool ~id:9 in
  let link = make_link engine pool in
  Link.set_receiver link (Node.receive b);
  Node.set_default_route a link;
  let got = ref 0 in
  Node.bind_flow b ~flow:0 (fun _ -> incr got);
  Node.receive a
    (Packet.acquire_data pool ~flow:0 ~src:0 ~dst:9 ~seq:0 ~now:0. ~retransmit:false);
  Engine.run engine;
  Alcotest.(check int) "default routed" 1 !got

let test_node_no_route_fails () =
  let engine = Engine.create () in
  let pool = Packet.create_pool () in
  let a = Node.create engine pool ~id:0 in
  let raised =
    try
      Node.receive a (data pool ~seq:0);
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "no route raises" true raised;
  (* Even the failure path returns the cell. *)
  Alcotest.(check int) "unroutable packet released" 0 (Packet.in_use pool)

(* {2 Topology} *)

let test_dumbbell_dimensions () =
  let spec = Topology.paper_spec in
  Alcotest.(check int) "bdp packets" 188 (Topology.bdp_packets spec);
  Alcotest.(check int) "buffer = 5 bdp" 940 (Topology.buffer_packets spec);
  let engine = Engine.create () in
  let d = Topology.dumbbell engine spec in
  Alcotest.(check int) "senders" 8 (Array.length d.Topology.senders);
  Alcotest.(check int) "receivers" 8 (Array.length d.Topology.receivers);
  Alcotest.(check int) "bottleneck capacity" 940 (Link.capacity_pkts d.Topology.bottleneck)

let test_dumbbell_end_to_end_rtt () =
  let engine = Engine.create () in
  let d = Topology.dumbbell engine Topology.paper_spec in
  let pool = d.Topology.pool in
  let rtt = ref 0. in
  (* Send one data packet from sender 0 to receiver 0 and bounce an ACK
     back; measure the echo time. *)
  let flow = 0 in
  Node.bind_flow d.Topology.receivers.(0) ~flow (fun pkt ->
      let sent_at = Packet.sent_at pool pkt in
      let next_expected = Packet.seq pool pkt + 1 in
      let ack =
        Packet.acquire_ack pool ~flow
          ~src:(Topology.receiver_id d 0)
          ~dst:0 ~next_expected ~has_echo:true ~echo_sent_at:sent_at ~echo_tx_time:sent_at
          ~ece:false ~now:(Engine.now engine)
      in
      Node.receive d.Topology.receivers.(0) ack);
  Node.bind_flow d.Topology.senders.(0) ~flow (fun _ -> rtt := Engine.now engine);
  Node.receive
    d.Topology.senders.(0)
    (Packet.acquire_data pool ~flow ~src:0
       ~dst:(Topology.receiver_id d 0)
       ~seq:0 ~now:0. ~retransmit:false);
  Engine.run engine;
  (* RTT = propagation (150 ms) + serialization of data and ack. *)
  Alcotest.(check bool) "close to 150 ms" true (!rtt > 0.150 && !rtt < 0.153);
  Alcotest.(check int) "round trip leaked nothing" 0 (Packet.in_use pool)

let test_dumbbell_rejects_tiny_rtt () =
  let engine = Engine.create () in
  let raised =
    try
      ignore
        (Topology.dumbbell engine { Topology.paper_spec with Topology.rtt_s = 0.001 });
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "rtt too small rejected" true raised

(* {2 Graph builder vs legacy dumbbell: per-field trace equivalence} *)

(* Run the same persistent-cubic workload on a dumbbell built either
   way and fold every observable into one string: per-flow transport
   stats (floats as %h), bottleneck counters, and the engine's executed
   event count.  The two constructions must be byte-identical. *)
let dumbbell_trace ~via_zoo ~spec ~seed ~duration_s =
  let engine = Engine.create () in
  let sender_node, receiver_node, bottleneck, reverse =
    if via_zoo then begin
      let z = Topology.Zoo.dumbbell ~spec () in
      let b = Topology.build engine z.Topology.Zoo.graph in
      ( (fun i -> Topology.node b ~id:i),
        (fun i -> Topology.node b ~id:(spec.Topology.n + i)),
        Topology.link_of b (Topology.find_link b ~label:"bottleneck"),
        Topology.link_of b (Topology.find_link b ~label:"reverse_bottleneck") )
    end
    else begin
      let d = Topology.dumbbell engine spec in
      ( (fun i -> d.Topology.senders.(i)),
        (fun i -> d.Topology.receivers.(i)),
        d.Topology.bottleneck,
        d.Topology.reverse_bottleneck )
    end
  in
  let rng = Prng.create ~seed in
  let senders =
    Array.init spec.Topology.n (fun i ->
        let _recv = Phi_tcp.Receiver.create engine ~node:(receiver_node i) ~flow:i ~peer:i in
        let s =
          Phi_tcp.Sender.create engine ~node:(sender_node i) ~flow:i
            ~dst:(spec.Topology.n + i)
            ~cc:(Phi_tcp.Cubic.make Phi_tcp.Cubic.default_params)
            ~total_segments:Phi_tcp.Sender.persistent_total ~source_index:i ()
        in
        ignore
          (Engine.schedule_after engine ~delay:(Prng.float rng) (fun () ->
               Phi_tcp.Sender.start s));
        s)
  in
  Engine.run ~until:duration_s engine;
  let buf = Buffer.create 256 in
  Array.iter
    (fun s ->
      let st = Phi_tcp.Sender.stats s in
      Buffer.add_string buf
        (Printf.sprintf "f=%d seg=%d retx=%d to=%d rtt=%h/%h;" st.Phi_tcp.Flow.flow
           st.Phi_tcp.Flow.segments st.Phi_tcp.Flow.retransmitted_segments
           st.Phi_tcp.Flow.timeouts st.Phi_tcp.Flow.min_rtt st.Phi_tcp.Flow.mean_rtt))
    senders;
  Array.iter Phi_tcp.Sender.abort senders;
  Buffer.add_string buf
    (Printf.sprintf "bneck=%d/%d/%d busy=%h wait=%h rev=%d events=%d"
       (Link.packets_delivered bottleneck) (Link.drops bottleneck)
       (Link.bytes_delivered bottleneck) (Link.busy_time bottleneck)
       (Link.total_queue_wait bottleneck)
       (Link.packets_delivered reverse) (Engine.executed engine));
  Buffer.contents buf

let prop_zoo_dumbbell_equivalent =
  QCheck.Test.make ~name:"zoo dumbbell trace ≡ legacy constructor" ~count:12
    QCheck.(
      quad (int_range 1 4) (int_range 0 2) (int_range 0 2) (int_range 0 10_000))
    (fun (n, bw_ix, rtt_ix, seed) ->
      let spec =
        {
          Topology.paper_spec with
          Topology.n;
          bottleneck_bw_bps = [| 5e6; 10e6; 15e6 |].(bw_ix);
          rtt_s = [| 0.05; 0.1; 0.15 |].(rtt_ix);
        }
      in
      String.equal
        (dumbbell_trace ~via_zoo:false ~spec ~seed ~duration_s:5.)
        (dumbbell_trace ~via_zoo:true ~spec ~seed ~duration_s:5.))

(* {2 Chain (parking lot)} *)

module Chain = Phi_net.Chain

let run_long_flow ?(cross = []) ~hops ~hop_bw () =
  let engine = Engine.create () in
  let spec = { (Chain.default_spec ~hops) with Chain.hop_bw_bps = hop_bw } in
  let chain = Chain.create engine spec in
  let long_recv =
    Phi_tcp.Receiver.create engine ~node:chain.Chain.long_receiver ~flow:0
      ~peer:(Chain.long_sender_id chain)
  in
  let long_sender =
    Phi_tcp.Sender.create engine ~node:chain.Chain.long_sender ~flow:0
      ~dst:(Chain.long_receiver_id chain)
      ~cc:(Phi_tcp.Cubic.make (Phi_tcp.Cubic.with_knobs ~initial_ssthresh:64. Phi_tcp.Cubic.default_params))
      ~total_segments:Phi_tcp.Sender.persistent_total ()
  in
  let cross_senders =
    List.map
      (fun hop ->
        let flow = 1000 + hop in
        let _recv =
          Phi_tcp.Receiver.create engine
            ~node:chain.Chain.cross_receivers.(hop)
            ~flow
            ~peer:(Chain.cross_sender_id chain hop)
        in
        let sender =
          Phi_tcp.Sender.create engine
            ~node:chain.Chain.cross_senders.(hop)
            ~flow
            ~dst:(Chain.cross_receiver_id chain hop)
            ~cc:
              (Phi_tcp.Cubic.make
                 (Phi_tcp.Cubic.with_knobs ~initial_ssthresh:64. Phi_tcp.Cubic.default_params))
            ~total_segments:Phi_tcp.Sender.persistent_total ()
        in
        sender)
      cross
  in
  Phi_tcp.Sender.start long_sender;
  List.iter Phi_tcp.Sender.start cross_senders;
  Engine.run ~until:30. engine;
  let acked = Phi_tcp.Sender.acked_segments long_sender in
  ignore long_recv;
  (chain, float_of_int (acked * Packet.mss * 8) /. 30.)

let test_chain_long_flow_bounded_by_slowest_hop () =
  (* Three hops at 20 / 6 / 20 Mb/s: the long flow caps at ~6 Mb/s. *)
  let _, thr = run_long_flow ~hops:3 ~hop_bw:[| 20e6; 6e6; 20e6 |] () in
  Alcotest.(check bool) "bounded by slowest hop" true (thr <= 6e6 *. 1.02);
  Alcotest.(check bool) "but close to it" true (thr > 4e6)

let test_chain_cross_traffic_squeezes_long_flow () =
  let _, alone = run_long_flow ~hops:2 ~hop_bw:[| 10e6; 10e6 |] () in
  let _, contended = run_long_flow ~cross:[ 0 ] ~hops:2 ~hop_bw:[| 10e6; 10e6 |] () in
  Alcotest.(check bool) "alone saturates" true (alone > 8e6);
  Alcotest.(check bool) "cross traffic halves the share" true
    (contended < 0.75 *. alone && contended > 0.2 *. alone)

let test_chain_hops_load_independently () =
  (* Cross traffic only on hop 0: hop 0 busy, hop 1 carries only the long
     flow. *)
  let chain, _ = run_long_flow ~cross:[ 0 ] ~hops:2 ~hop_bw:[| 10e6; 10e6 |] () in
  let util hop = Link.busy_time chain.Chain.hop_links.(hop) /. 30. in
  Alcotest.(check bool) "hop 0 saturated" true (util 0 > 0.9);
  Alcotest.(check bool) "hop 1 partly idle" true (util 1 < 0.8)

let test_chain_validation () =
  let engine = Engine.create () in
  let raised f = try f (); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "zero hops" true
    (raised (fun () -> ignore (Chain.create engine (Chain.default_spec ~hops:0))));
  Alcotest.(check bool) "bw length mismatch" true
    (raised (fun () ->
         ignore
           (Chain.create engine
              { (Chain.default_spec ~hops:2) with Chain.hop_bw_bps = [| 1e6 |] })))

(* {2 Monitor} *)

let test_monitor_utilization_bins () =
  let engine = Engine.create () in
  let pool = Packet.create_pool () in
  let link =
    Link.create engine pool
      ~bandwidth_bps:(float_of_int (Packet.mss * 8) *. 10.)
      ~delay_s:0. ~capacity_pkts:100
  in
  Link.set_receiver link (fun p -> Packet.release pool p);
  let monitor = Monitor.create engine link ~interval_s:1.0 in
  (* 5 packets at 10 pkt/s = 0.5 s busy in the first second. *)
  for seq = 0 to 4 do
    Link.send link (data pool ~seq)
  done;
  Engine.run ~until:2.5 engine;
  Alcotest.(check (float 1e-6)) "first bin ~50%" 0.5 (snd (Monitor.utilization_series monitor).(0));
  Alcotest.(check (float 1e-6)) "second bin idle" 0. (snd (Monitor.utilization_series monitor).(1));
  Alcotest.(check bool) "mean util positive" true (Monitor.mean_utilization monitor > 0.);
  Monitor.stop monitor;
  let samples = Array.length (Monitor.utilization_series monitor) in
  Engine.run ~until:5. engine;
  Alcotest.(check int) "stopped sampling" samples (Array.length (Monitor.utilization_series monitor))

let suite =
  [
    ("packet constructors", `Quick, test_packet_constructors);
    ("packet sack limit", `Quick, test_packet_sack_limit);
    ("packet recycling", `Quick, test_packet_recycling);
    ("packet double release", `Quick, test_packet_double_release_rejected);
    ("link delivery timing", `Quick, test_link_delivery_timing);
    ("link fifo order", `Quick, test_link_fifo_order);
    ("link drop tail", `Quick, test_link_drop_tail);
    ("link busy time", `Quick, test_link_busy_time_utilization);
    ("link queue wait", `Quick, test_link_queue_wait);
    ("link fault injection", `Quick, test_link_fault_injection);
    ("link flap freezes queue", `Quick, test_link_flap_freezes_queue);
    ("link set_up idempotent", `Quick, test_link_set_up_idempotent);
    ("link rate change mid-tx", `Quick, test_link_rate_change_mid_transmission);
    ("link delay jitter fifo", `Quick, test_link_delay_jitter_never_reorders);
    ("link delay increase", `Quick, test_link_delay_increase_takes_effect);
    ("link dynamics validation", `Quick, test_link_dynamics_validation);
    ("link stats window", `Quick, test_link_stats_window);
    ("link validation", `Quick, test_link_validation);
    ("red no drops below min", `Quick, test_red_no_drops_below_min_threshold);
    ("red drops above max", `Quick, test_red_drops_above_max_threshold);
    ("red probabilistic band", `Quick, test_red_probabilistic_band);
    ("red validation", `Quick, test_red_validation);
    ("red shortens cubic queue", `Slow, test_red_keeps_cubic_queue_short_end_to_end);
    ("node local delivery", `Quick, test_node_local_delivery);
    ("node forwarding", `Quick, test_node_forwarding);
    ("node default route", `Quick, test_node_default_route);
    ("node no route fails", `Quick, test_node_no_route_fails);
    ("dumbbell dimensions", `Quick, test_dumbbell_dimensions);
    ("dumbbell end-to-end rtt", `Quick, test_dumbbell_end_to_end_rtt);
    ("dumbbell rejects tiny rtt", `Quick, test_dumbbell_rejects_tiny_rtt);
    ("chain slowest hop bounds", `Slow, test_chain_long_flow_bounded_by_slowest_hop);
    ("chain cross traffic squeezes", `Slow, test_chain_cross_traffic_squeezes_long_flow);
    ("chain hops independent", `Slow, test_chain_hops_load_independently);
    ("chain validation", `Quick, test_chain_validation);
    ("monitor utilization bins", `Quick, test_monitor_utilization_bins);
    QCheck_alcotest.to_alcotest prop_zoo_dumbbell_equivalent;
  ]
