(* Tests for the conservative parallel-DES coordinator ([Phi_sim.Pdes])
   and the cross-island [Boundary_link]: partition planning, window
   validation, and the central determinism contract — a partitioned run
   must replay the serial engine's delivery trace bit for bit, whatever
   the worker count. *)

module Engine = Phi_sim.Engine
module Pdes = Phi_sim.Pdes
module Packet = Phi_net.Packet
module Link = Phi_net.Link
module Boundary_link = Phi_net.Boundary_link
module Prng = Phi_util.Prng

(* {2 Partition planning} *)

let test_plan_cuts_uniform () =
  (* Uniform delays: every edge is a candidate, so the planner falls
     back to pure balance — cuts land at the even-split boundaries. *)
  Alcotest.(check (list int)) "even thirds" [ 2; 5 ]
    (Pdes.plan_cuts ~delays:(Array.make 8 1e-3) ~islands:3);
  Alcotest.(check (list int)) "halves" [ 3 ]
    (Pdes.plan_cuts ~delays:(Array.make 8 1e-3) ~islands:2);
  Alcotest.(check (list int)) "single island needs no cut" []
    (Pdes.plan_cuts ~delays:(Array.make 8 1e-3) ~islands:1);
  Alcotest.(check (list int)) "one island per node cuts everything" [ 0; 1; 2 ]
    (Pdes.plan_cuts ~delays:(Array.make 3 1e-3) ~islands:4)

let test_plan_cuts_prefers_large_delays () =
  (* The smallest chosen delay is the lookahead: the planner must pick
     the k largest-delay edges even when they are badly placed. *)
  Alcotest.(check (list int)) "picks the 5 ms and 4 ms edges" [ 1; 3 ]
    (Pdes.plan_cuts ~delays:[| 1e-3; 5e-3; 2e-3; 4e-3; 3e-3 |] ~islands:3);
  Alcotest.(check (list int)) "single cut at the max" [ 1 ]
    (Pdes.plan_cuts ~delays:[| 1e-3; 5e-3; 2e-3; 4e-3; 3e-3 |] ~islands:2)

let prop_plan_cuts_maximizes_lookahead =
  QCheck.Test.make ~name:"plan_cuts lookahead = k-th largest delay, segments contiguous"
    ~count:200
    QCheck.(pair (int_range 0 1_000_000) (int_range 1 12))
    (fun (seed, n) ->
      let rng = Prng.create ~seed in
      let delays = Array.init n (fun _ -> Prng.float_range rng ~lo:1e-4 ~hi:1e-1) in
      let islands = 1 + Prng.int rng ~bound:(n + 1) in
      let cuts = Pdes.plan_cuts ~delays ~islands in
      let k = islands - 1 in
      if List.length cuts <> k then QCheck.Test.fail_report "wrong cut count";
      (* Strictly increasing, in range. *)
      let rec ordered prev = function
        | [] -> true
        | c :: rest -> c > prev && c < n && ordered c rest
      in
      if not (ordered (-1) cuts) then QCheck.Test.fail_report "cuts not increasing";
      (* The minimum chosen delay equals the k-th largest overall. *)
      (match cuts with
      | [] -> true
      | _ ->
        let sorted = Array.copy delays in
        Array.sort (fun a b -> Float.compare b a) sorted;
        let d_star = sorted.(k - 1) in
        let d_min = List.fold_left (fun acc c -> Float.min acc delays.(c)) infinity cuts in
        Float.equal d_min d_star))

let test_plan_cuts_rejects_bad_inputs () =
  let rejects f = try ignore (f ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "islands 0" true
    (rejects (fun () -> Pdes.plan_cuts ~delays:[| 1. |] ~islands:0));
  Alcotest.(check bool) "more islands than nodes" true
    (rejects (fun () -> Pdes.plan_cuts ~delays:[| 1. |] ~islands:3));
  Alcotest.(check bool) "negative delay" true
    (rejects (fun () -> Pdes.plan_cuts ~delays:[| 1.; -1. |] ~islands:2));
  Alcotest.(check bool) "nan delay" true
    (rejects (fun () -> Pdes.plan_cuts ~delays:[| 1.; Float.nan |] ~islands:2))

(* {2 Coordinator validation} *)

let two_island_coordinator ~delay_s =
  let coord = Pdes.create () in
  let a = Pdes.add_island coord in
  let b = Pdes.add_island coord in
  let src_pool = Packet.create_pool () in
  let dst_pool = Packet.create_pool () in
  let bl =
    Boundary_link.create coord ~src:a ~dst:b ~src_pool ~dst_pool ~bandwidth_bps:1e9
      ~delay_s ~capacity_pkts:64 ()
  in
  (coord, a, b, src_pool, dst_pool, bl)

let test_run_validation () =
  let rejects f = try f (); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "empty coordinator" true
    (rejects (fun () -> Pdes.run ~until:1. (Pdes.create ())));
  let coord, _, _, _, _, _ = two_island_coordinator ~delay_s:0.01 in
  Alcotest.(check (float 0.)) "lookahead recorded" 0.01 (Pdes.lookahead_s coord);
  Alcotest.(check bool) "jobs 0" true (rejects (fun () -> Pdes.run ~jobs:0 ~until:1. coord));
  Alcotest.(check bool) "negative until" true
    (rejects (fun () -> Pdes.run ~until:(-1.) coord));
  Alcotest.(check bool) "window above lookahead" true
    (rejects (fun () -> Pdes.run ~window_s:0.02 ~until:1. coord));
  Alcotest.(check bool) "non-positive window" true
    (rejects (fun () -> Pdes.run ~window_s:0. ~until:1. coord));
  (* A window at exactly the lookahead is the intended operating point. *)
  Pdes.run ~window_s:0.01 ~until:0.05 coord

let test_lookahead_is_minimum () =
  let coord = Pdes.create () in
  Alcotest.(check (float 0.)) "no boundary yet" infinity (Pdes.lookahead_s coord);
  Pdes.note_lookahead coord 0.02;
  Pdes.note_lookahead coord 0.005;
  Pdes.note_lookahead coord 0.03;
  Alcotest.(check (float 0.)) "minimum wins" 0.005 (Pdes.lookahead_s coord);
  let rejects d = try Pdes.note_lookahead coord d; false with Invalid_argument _ -> true in
  Alcotest.(check bool) "zero rejected" true (rejects 0.);
  Alcotest.(check bool) "infinite rejected" true (rejects infinity)

(* {2 Serial = partitioned delivery trace} *)

(* A randomized packet workload pushed through one link.  The serial
   reference sends through an ordinary [Link] on a lone engine; the
   partitioned run sends through a [Boundary_link] between two islands.
   Same queue, same serialization, same IEEE arrival arithmetic — so the
   delivery traces (time and every header field, rendered with [%h])
   must match exactly, at any worker count. *)

type pkt_spec = {
  at : float;
  p_flow : int;
  p_src : int;
  p_dst : int;
  p_seq : int;
  is_data : bool;
  retx : bool;
  ce : bool;
  has_echo : bool;
  echo_sent_at : float;
  echo_tx_time : float;
  ece : bool;
  sacks : (int * int) list;
}

let random_spec rng =
  let is_data = Prng.bool rng in
  {
    at = Prng.float_range rng ~lo:0. ~hi:0.5;
    p_flow = Prng.int rng ~bound:1000;
    p_src = Prng.int rng ~bound:100;
    p_dst = 100 + Prng.int rng ~bound:100;
    p_seq = Prng.int rng ~bound:1_000_000;
    is_data;
    retx = is_data && Prng.bool rng;
    ce = is_data && Prng.bool rng;
    has_echo = (not is_data) && Prng.bool rng;
    echo_sent_at = Prng.float_range rng ~lo:0. ~hi:1.;
    echo_tx_time = Prng.float_range rng ~lo:0. ~hi:0.01;
    ece = (not is_data) && Prng.bool rng;
    sacks =
      (if is_data then []
       else
         List.init
           (Prng.int rng ~bound:(Packet.max_sack_blocks + 1))
           (fun i ->
             let lo = (20 * i) + Prng.int rng ~bound:5 in
             (lo, lo + 1 + Prng.int rng ~bound:5)));
  }

let inject engine pool link spec =
  ignore
    (Engine.schedule_at engine ~time:spec.at (fun () ->
         let pkt =
           if spec.is_data then begin
             let h =
               Packet.acquire_data pool ~flow:spec.p_flow ~src:spec.p_src ~dst:spec.p_dst
                 ~seq:spec.p_seq ~now:(Engine.now engine) ~retransmit:spec.retx
             in
             if spec.ce then Packet.mark_ce pool h;
             h
           end
           else begin
             let h =
               Packet.acquire_ack pool ~flow:spec.p_flow ~src:spec.p_src ~dst:spec.p_dst
                 ~next_expected:spec.p_seq ~has_echo:spec.has_echo
                 ~echo_sent_at:spec.echo_sent_at ~echo_tx_time:spec.echo_tx_time ~ece:spec.ece
                 ~now:(Engine.now engine)
             in
             List.iter (fun (lo, hi) -> Packet.add_sack pool h ~lo ~hi) spec.sacks;
             h
           end
         in
         Link.send link pkt))

let describe pool ~now pkt =
  let base =
    Printf.sprintf "%h f=%d %d>%d seq=%d size=%d sent=%h" now (Packet.flow pool pkt)
      (Packet.src pool pkt) (Packet.dst pool pkt) (Packet.seq pool pkt) (Packet.size pool pkt)
      (Packet.sent_at pool pkt)
  in
  if Packet.is_data pool pkt then
    Printf.sprintf "%s data retx=%b ce=%b" base (Packet.retransmit pool pkt) (Packet.ce pool pkt)
  else
    Printf.sprintf "%s ack echo=%b es=%h etx=%h ece=%b sack=%s" base
      (Packet.ack_has_echo pool pkt)
      (Packet.ack_echo_sent_at pool pkt)
      (Packet.ack_echo_tx_time pool pkt)
      (Packet.ack_ece pool pkt)
      (String.concat ","
         (List.init (Packet.sack_count pool pkt) (fun i ->
              Printf.sprintf "%d-%d" (Packet.sack_lo pool pkt i) (Packet.sack_hi pool pkt i))))

let serial_trace ~bw ~delay ~capacity specs =
  let engine = Engine.create () in
  let pool = Packet.create_pool () in
  let link = Link.create engine pool ~bandwidth_bps:bw ~delay_s:delay ~capacity_pkts:capacity in
  let trace = ref [] in
  Link.set_receiver link (fun p ->
      trace := describe pool ~now:(Engine.now engine) p :: !trace;
      Packet.release pool p);
  List.iter (inject engine pool link) specs;
  Engine.run engine;
  List.rev !trace

let partitioned_trace ~jobs ~bw ~delay ~capacity ~until specs =
  let coord = Pdes.create () in
  let a = Pdes.add_island coord in
  let b = Pdes.add_island coord in
  let src_pool = Packet.create_pool () in
  let dst_pool = Packet.create_pool () in
  let bl =
    Boundary_link.create coord ~src:a ~dst:b ~src_pool ~dst_pool ~bandwidth_bps:bw
      ~delay_s:delay ~capacity_pkts:capacity ()
  in
  let trace = ref [] in
  let dst_engine = Pdes.engine b in
  Boundary_link.set_receiver bl (fun p ->
      trace := describe dst_pool ~now:(Engine.now dst_engine) p :: !trace;
      Packet.release dst_pool p);
  List.iter (inject (Pdes.engine a) src_pool (Boundary_link.egress bl)) specs;
  Pdes.run ~jobs ~until coord;
  Alcotest.(check int) "nothing left in transit" 0 (Boundary_link.in_transit bl);
  Alcotest.(check int) "no src cell leaked" 0 (Packet.in_use src_pool);
  Alcotest.(check int) "no dst cell leaked" 0 (Packet.in_use dst_pool);
  (List.rev !trace, Boundary_link.delivered bl)

let prop_partitioned_replays_serial =
  QCheck.Test.make ~name:"partitioned delivery trace = serial (jobs 1 and 2)" ~count:40
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Prng.create ~seed in
      let bw = Prng.float_range rng ~lo:1e6 ~hi:1e9 in
      let delay = Prng.float_range rng ~lo:1e-3 ~hi:0.05 in
      let capacity = 2 + Prng.int rng ~bound:30 in
      let n = 1 + Prng.int rng ~bound:40 in
      let specs = List.init n (fun _ -> random_spec rng) in
      (* Sends span [0, 0.5]; worst-case serialization of 41 full-size
         packets at 1 Mb/s is ~0.5 s; max delay 50 ms.  2 s covers every
         delivery with windows to spare. *)
      let until = 2.0 in
      let serial = serial_trace ~bw ~delay ~capacity specs in
      let p1, d1 = partitioned_trace ~jobs:1 ~bw ~delay ~capacity ~until specs in
      let p2, d2 = partitioned_trace ~jobs:2 ~bw ~delay ~capacity ~until specs in
      if serial = [] then QCheck.Test.fail_report "degenerate case: no deliveries";
      if d1 <> List.length serial then QCheck.Test.fail_report "delivered count diverged";
      if d1 <> d2 then QCheck.Test.fail_report "jobs changed delivered count";
      if p1 <> serial then QCheck.Test.fail_report "jobs-1 trace diverged from serial";
      if p2 <> serial then QCheck.Test.fail_report "jobs-2 trace diverged from serial";
      true)

(* {2 Ring overflow} *)

let test_ring_overflow_raises () =
  (* A 1-entry ring with two packets serialized inside one window: the
     producer must fail loudly (blocking would deadlock the barrier). *)
  let coord = Pdes.create () in
  let a = Pdes.add_island coord in
  let b = Pdes.add_island coord in
  let src_pool = Packet.create_pool () in
  let dst_pool = Packet.create_pool () in
  let bl =
    Boundary_link.create coord ~src:a ~dst:b ~src_pool ~dst_pool ~bandwidth_bps:1e9
      ~delay_s:0.01 ~capacity_pkts:16 ~ring_capacity:1 ()
  in
  Boundary_link.set_receiver bl (fun p -> Packet.release dst_pool p);
  let engine = Pdes.engine a in
  for seq = 0 to 1 do
    ignore
      (Engine.schedule_at engine ~time:0. (fun () ->
           Link.send (Boundary_link.egress bl)
             (Packet.acquire_data src_pool ~flow:0 ~src:0 ~dst:1 ~seq ~now:0.
                ~retransmit:false)))
  done;
  let raised =
    try
      Pdes.run ~jobs:1 ~until:0.1 coord;
      false
    with Boundary_link.Fault msg -> String.length msg > 0
  in
  Alcotest.(check bool) "overflow raises Fault" true raised

(* {2 Boundary construction validation} *)

let test_boundary_create_validation () =
  let coord = Pdes.create () in
  let a = Pdes.add_island coord in
  let b = Pdes.add_island coord in
  let pool = Packet.create_pool () in
  let rejects f = try ignore (f ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "zero delay rejected" true
    (rejects (fun () ->
         Boundary_link.create coord ~src:a ~dst:b ~src_pool:pool ~dst_pool:pool
           ~bandwidth_bps:1e9 ~delay_s:0. ~capacity_pkts:4 ()));
  Alcotest.(check bool) "same island rejected" true
    (rejects (fun () ->
         Boundary_link.create coord ~src:a ~dst:a ~src_pool:pool ~dst_pool:pool
           ~bandwidth_bps:1e9 ~delay_s:0.01 ~capacity_pkts:4 ()));
  Alcotest.(check int) "island indices" 1 (Pdes.index b);
  Alcotest.(check int) "island count" 2 (Pdes.islands coord)

(* {2 Partitioning the topology zoo} *)

module Topology = Phi_net.Topology

let test_zoo_cut_lookaheads () =
  (* Every zoo graph declares its island cuts; the registered lookahead
     is what buys the parallel window, so it must match the topology's
     documented cut delays. *)
  let lookahead name =
    Topology.Graph.cut_lookahead_s (Topology.Zoo.by_name name).Topology.Zoo.graph
  in
  Alcotest.(check (float 0.)) "parking lot: 10 ms inter-segment cut" 0.01
    (lookahead "parking_lot");
  Alcotest.(check (float 0.)) "wan: smallest long-haul pair delay, 15 ms" 0.015
    (lookahead "wan");
  Alcotest.(check (float 0.)) "dumbbell zoo = legacy spec cut"
    (Topology.cut_lookahead_s Topology.paper_spec)
    (lookahead "dumbbell");
  (* The fat-tree pod is a single island (a datacenter pod has no
     useful cut at these delays): no cross-island link, no lookahead. *)
  Alcotest.(check (float 0.)) "fat tree pod is one island" infinity
    (lookahead "fat_tree_pod")

let test_zoo_plan_cuts_interop () =
  (* The parking lot as plan_cuts sees it: a line of segments joined by
     alternating 5 ms hop and 10 ms inter-segment edges.  The planner
     must choose exactly the 10 ms edges — the same cuts Zoo.parking_lot
     bakes into its island assignment — and the plan's lookahead (its
     smallest cut delay) must equal what the realized graph registers. *)
  let spec = Topology.Zoo.default_parking_lot in
  let s = spec.Topology.Zoo.segments in
  let delays =
    Array.init
      ((2 * s) - 1)
      (fun i ->
        if i mod 2 = 0 then spec.Topology.Zoo.hop_delay_s else spec.Topology.Zoo.cut_delay_s)
  in
  let cuts = Pdes.plan_cuts ~delays ~islands:s in
  Alcotest.(check (list int)) "cuts land on the inter-segment edges" [ 1; 3 ] cuts;
  let plan_lookahead = List.fold_left (fun acc c -> Float.min acc delays.(c)) infinity cuts in
  Alcotest.(check (float 0.)) "plan lookahead = realized cut lookahead"
    (Topology.Graph.cut_lookahead_s (Topology.Zoo.parking_lot ()).Topology.Zoo.graph)
    plan_lookahead

(* One partitioned run of the WAN zoo under persistent Cubic senders on
   every flow path, folded to a fingerprint.  Flow ids and rng draws
   follow flow-path order, so the fingerprint is a pure function of the
   seed — whatever the worker count. *)
let wan_zoo_fingerprint ~jobs =
  let coordinator = Pdes.create () in
  let zoo = Topology.Zoo.wan () in
  let built = Topology.build_partitioned coordinator zoo.Topology.Zoo.graph in
  let flows = Phi_tcp.Flow.allocator () in
  let rng = Prng.create ~seed:19 in
  let params = Phi_tcp.Cubic.default_params in
  let senders =
    Array.map
      (fun (fp : Topology.Zoo.flow_path) ->
        let flow = Phi_tcp.Flow.fresh flows in
        let _receiver =
          Phi_tcp.Receiver.create
            (Topology.node_engine built ~id:fp.Topology.Zoo.dst)
            ~node:(Topology.node built ~id:fp.Topology.Zoo.dst)
            ~flow ~peer:fp.Topology.Zoo.src
        in
        let engine = Topology.node_engine built ~id:fp.Topology.Zoo.src in
        let sender =
          Phi_tcp.Sender.create engine
            ~node:(Topology.node built ~id:fp.Topology.Zoo.src)
            ~flow ~dst:fp.Topology.Zoo.dst ~cc:(Phi_tcp.Cubic.make params)
            ~total_segments:Phi_tcp.Sender.persistent_total ~source_index:flow ()
        in
        ignore
          (Engine.schedule_after engine ~delay:(Prng.float rng) (fun () ->
               Phi_tcp.Sender.start sender));
        sender)
      zoo.Topology.Zoo.flow_paths
  in
  Pdes.run ~jobs ~window_s:(Pdes.lookahead_s coordinator) ~until:2. coordinator;
  let fnv h v = (h lxor (v land 0xffffffff)) * 0x01000193 land 0xffffffff in
  let checksum =
    Array.fold_left
      (fun acc s ->
        let st = Phi_tcp.Sender.stats s in
        fnv (fnv acc st.Phi_tcp.Flow.segments) st.Phi_tcp.Flow.retransmitted_segments)
      0x811c9dc5 senders
  in
  Printf.sprintf "events=%d checksum=%08x" (Topology.total_events built) checksum

let test_zoo_wan_partitioned_determinism () =
  (* The determinism contract on a zoo graph: the 4-site WAN mesh,
     partitioned one island per site, replays identically at 1 and 2
     worker domains. *)
  let serial = wan_zoo_fingerprint ~jobs:1 in
  let parallel = wan_zoo_fingerprint ~jobs:2 in
  Alcotest.(check string) "jobs 2 replays jobs 1" serial parallel;
  (* A fingerprint of an idle network would also be jobs-invariant;
     make sure the transport actually ran. *)
  Alcotest.(check bool) "the mesh carried traffic" false
    (String.length serial >= 9 && String.sub serial 0 9 = "events=0 ")

let suite =
  [
    Alcotest.test_case "plan_cuts: uniform delays" `Quick test_plan_cuts_uniform;
    Alcotest.test_case "plan_cuts: prefers large delays" `Quick test_plan_cuts_prefers_large_delays;
    QCheck_alcotest.to_alcotest prop_plan_cuts_maximizes_lookahead;
    Alcotest.test_case "plan_cuts: rejects bad inputs" `Quick test_plan_cuts_rejects_bad_inputs;
    Alcotest.test_case "run validation" `Quick test_run_validation;
    Alcotest.test_case "lookahead is the minimum" `Quick test_lookahead_is_minimum;
    QCheck_alcotest.to_alcotest prop_partitioned_replays_serial;
    Alcotest.test_case "ring overflow raises" `Quick test_ring_overflow_raises;
    Alcotest.test_case "boundary create validation" `Quick test_boundary_create_validation;
    Alcotest.test_case "zoo graphs register their cut lookaheads" `Quick test_zoo_cut_lookaheads;
    Alcotest.test_case "plan_cuts agrees with the parking-lot islands" `Quick
      test_zoo_plan_cuts_interop;
    Alcotest.test_case "partitioned WAN zoo is jobs-invariant" `Quick
      test_zoo_wan_partitioned_determinism;
  ]
