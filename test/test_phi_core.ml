(* Tests for the phi core library: metrics, context, context server,
   policy, client glue, prioritization and informed adaptation. *)

module Engine = Phi_sim.Engine
module Cubic = Phi_tcp.Cubic
open Phi

(* {2 Metric} *)

let test_power_formula () =
  Alcotest.(check (float 1e-9)) "r/d in Mbps/s" 10.
    (Metric.power ~throughput_bps:1e6 ~delay_s:0.1);
  Alcotest.(check (float 1e-9)) "degenerate" 0. (Metric.power ~throughput_bps:0. ~delay_s:0.1)

let test_power_with_loss () =
  Alcotest.(check (float 1e-9)) "P_l" 9.
    (Metric.power_with_loss ~throughput_bps:1e6 ~loss_rate:0.1 ~delay_s:0.1);
  Alcotest.(check (float 1e-9)) "loss clamped" 0.
    (Metric.power_with_loss ~throughput_bps:1e6 ~loss_rate:2. ~delay_s:0.1)

let test_log_power () =
  Alcotest.(check (float 1e-9)) "ln(r/d)" (log 10.)
    (Metric.log_power ~throughput_bps:1e6 ~delay_s:0.1);
  Alcotest.(check bool) "starved" true
    (Float.equal (Metric.log_power ~throughput_bps:0. ~delay_s:0.1) neg_infinity)

let test_compare_desc () =
  Alcotest.(check bool) "higher first" true (Metric.compare_desc 2. 1. < 0);
  Alcotest.(check bool) "nan last" true (Metric.compare_desc nan 1. > 0)

(* {2 Context} *)

let ctx ?(u = 0.) ?(q = 0.) ?(n = 0) ?(l = 0.) () =
  { Context.utilization = u; queue_delay_s = q; competing_senders = n; loss_rate = l }

let test_severity_monotone_in_utilization () =
  Alcotest.(check bool) "more utilization, more severe" true
    (Context.severity (ctx ~u:0.9 ()) > Context.severity (ctx ~u:0.1 ()));
  let s = Context.severity (ctx ~u:1. ~q:1. ~n:1000 ~l:1. ()) in
  Alcotest.(check bool) "bounded" true (s >= 0. && s <= 1.)

let test_bucketize_edges () =
  let b = Context.bucketize (ctx ()) in
  Alcotest.(check int) "u bucket 0" 0 b.Context.u_bucket;
  Alcotest.(check int) "n bucket 0" 0 b.Context.n_bucket;
  Alcotest.(check int) "q bucket 0" 0 b.Context.q_bucket;
  let b = Context.bucketize (ctx ~u:0.99 ~q:1. ~n:1000 ()) in
  Alcotest.(check int) "u top" 3 b.Context.u_bucket;
  Alcotest.(check int) "n top" 3 b.Context.n_bucket;
  Alcotest.(check int) "q top" 3 b.Context.q_bucket

let test_bucket_distance () =
  let a = Context.bucketize (ctx ()) in
  let b = Context.bucketize (ctx ~u:0.99 ~q:1. ~n:1000 ()) in
  Alcotest.(check int) "L1 distance" 9 (Context.bucket_distance a b);
  Alcotest.(check int) "self distance" 0 (Context.bucket_distance a a)

(* {2 Context_server} *)

let server_fixture ?capacity_bps ?(window_s = 10.) () =
  let engine = Engine.create () in
  let server = Context_server.create engine ?capacity_bps ~window_s () in
  (engine, server)

let test_server_empty_context () =
  let _, server = server_fixture () in
  let c = Context_server.peek server ~path:"p" in
  Alcotest.(check (float 0.)) "no utilization" 0. c.Context.utilization;
  Alcotest.(check int) "no senders" 0 c.Context.competing_senders

let test_server_active_counting () =
  let _, server = server_fixture () in
  ignore (Context_server.lookup server ~path:"p");
  ignore (Context_server.lookup server ~path:"p");
  Alcotest.(check int) "two active" 2 (Context_server.active_connections server ~path:"p");
  Context_server.report server ~path:"p" ~bytes:1000 ~duration_s:1. ~min_rtt:0.1 ~mean_rtt:0.12
    ~retransmitted:0 ~segments:10;
  Alcotest.(check int) "one left" 1 (Context_server.active_connections server ~path:"p");
  Alcotest.(check int) "lookups" 2 (Context_server.lookup_count server);
  Alcotest.(check int) "reports" 1 (Context_server.report_count server)

let test_server_utilization_estimate () =
  let engine, server = server_fixture ~capacity_bps:1e6 () in
  Engine.run ~until:10. engine;
  (* 500 kbit over the last 10 s against a 1 Mb/s path: u = 0.05... use a
     5 s transfer of 125000 B = 1 Mbit -> windowed rate 0.1 Mb/s? No:
     1 Mbit over 10 s window = 0.1 of capacity. *)
  Context_server.report server ~path:"p" ~bytes:125_000 ~duration_s:5. ~min_rtt:0.1
    ~mean_rtt:0.15 ~retransmitted:0 ~segments:84;
  let c = Context_server.peek server ~path:"p" in
  Alcotest.(check (float 1e-6)) "u = bits / window / capacity" 0.1 c.Context.utilization;
  Alcotest.(check (float 1e-6)) "q from rtt excess" 0.05 c.Context.queue_delay_s

let test_server_window_expiry () =
  let engine, server = server_fixture ~capacity_bps:1e6 ~window_s:5. () in
  Engine.run ~until:1. engine;
  Context_server.report server ~path:"p" ~bytes:125_000 ~duration_s:1. ~min_rtt:0.1
    ~mean_rtt:0.1 ~retransmitted:0 ~segments:84;
  Alcotest.(check bool) "fresh report counts" true
    ((Context_server.peek server ~path:"p").Context.utilization > 0.);
  Engine.run ~until:20. engine;
  Alcotest.(check (float 0.)) "stale report expired" 0.
    (Context_server.peek server ~path:"p").Context.utilization

let test_server_loss_ewma () =
  let _, server = server_fixture () in
  Context_server.report server ~path:"p" ~bytes:1000 ~duration_s:1. ~min_rtt:nan ~mean_rtt:nan
    ~retransmitted:5 ~segments:100;
  let c = Context_server.peek server ~path:"p" in
  Alcotest.(check (float 1e-9)) "loss seeded" 0.05 c.Context.loss_rate

let test_server_oracle_override () =
  let _, server = server_fixture ~capacity_bps:1e6 () in
  Context_server.set_oracle server ~path:"p" (fun () -> 0.73);
  Alcotest.(check (float 0.)) "oracle wins" 0.73
    (Context_server.peek server ~path:"p").Context.utilization;
  Context_server.clear_oracle server ~path:"p";
  Alcotest.(check (float 0.)) "back to estimate" 0.
    (Context_server.peek server ~path:"p").Context.utilization

let test_server_learns_capacity () =
  let engine, server = server_fixture () in
  Engine.run ~until:10. engine;
  Context_server.report server ~path:"p" ~bytes:1_250_000 ~duration_s:10. ~min_rtt:0.1
    ~mean_rtt:0.1 ~retransmitted:0 ~segments:800;
  (match Context_server.learned_capacity_bps server ~path:"p" with
  | Some c -> Alcotest.(check bool) "positive estimate" true (c > 0.)
  | None -> Alcotest.fail "expected learned capacity");
  Alcotest.(check bool) "paths independent" true
    (Context_server.learned_capacity_bps server ~path:"other" = None)

(* {2 Policy} *)

(* Policy choices are registry values; the heuristic and the
   nearest-bucket machinery still tune Cubic parameters, so unwrap for
   the parameter-level assertions. *)
let cubic_of = function
  | Cc_algo.Cubic p -> p
  | a -> Alcotest.fail ("expected a Cubic choice, got " ^ Cc_algo.name a)

let test_policy_heuristic_monotone () =
  let quiet = cubic_of (Policy.heuristic (ctx ())) in
  let busy = cubic_of (Policy.heuristic (ctx ~u:0.95 ~q:0.3 ~n:64 ~l:0.04 ())) in
  Alcotest.(check bool) "quiet starts bigger" true
    (quiet.Cubic.initial_cwnd > busy.Cubic.initial_cwnd);
  Alcotest.(check bool) "quiet threshold bigger" true
    (quiet.Cubic.initial_ssthresh > busy.Cubic.initial_ssthresh);
  Alcotest.(check bool) "busy backs off harder" true (busy.Cubic.beta >= quiet.Cubic.beta)

let test_policy_learned_exact_hit () =
  let policy = Policy.create () in
  let context = ctx ~u:0.5 ~q:0.02 ~n:4 () in
  let params = Cubic.with_knobs ~initial_cwnd:42. Cubic.default_params in
  Policy.learn policy (Context.bucketize context) (Cc_algo.Cubic params);
  let got = cubic_of (Policy.choice_for policy context) in
  Alcotest.(check (float 0.)) "learned params" 42. got.Cubic.initial_cwnd

let test_policy_nearest_fallback () =
  let policy = Policy.create () in
  let learned_ctx = ctx ~u:0.5 ~q:0.02 ~n:4 () in
  let params = Cubic.with_knobs ~initial_cwnd:24. Cubic.default_params in
  Policy.learn policy (Context.bucketize learned_ctx) (Cc_algo.Cubic params);
  (* One bucket away in u: nearest neighbour applies. *)
  let near = ctx ~u:0.7 ~q:0.02 ~n:4 () in
  Alcotest.(check (float 0.)) "nearest" 24.
    (cubic_of (Policy.choice_for policy near)).Cubic.initial_cwnd;
  (* Far away: falls back to the heuristic, not the lone learned entry. *)
  let far = ctx ~u:0.99 ~q:0.5 ~n:100 () in
  Alcotest.(check bool) "heuristic fallback" true
    (not (Float.equal (cubic_of (Policy.choice_for policy far)).Cubic.initial_cwnd 24.))

let test_policy_learns_any_algorithm () =
  (* The control plane is algorithm-agnostic: a bucket can select any
     registered algorithm, not just Cubic parameters. *)
  let policy = Policy.create () in
  let context = ctx ~u:0.5 ~q:0.02 ~n:4 () in
  Policy.learn policy (Context.bucketize context) Cc_algo.Vegas;
  match Policy.choice_for policy context with
  | Cc_algo.Vegas -> ()
  | a -> Alcotest.fail ("expected vegas, got " ^ Cc_algo.name a)

let test_policy_learned_listing () =
  let policy = Policy.create () in
  Alcotest.(check int) "empty" 0 (List.length (Policy.learned policy));
  Policy.learn policy (Context.bucketize (ctx ())) (Cc_algo.Cubic Cubic.default_params);
  Alcotest.(check int) "one entry" 1 (List.length (Policy.learned policy))

(* {2 Cc_algo registry} *)

let test_cc_algo_registry () =
  Alcotest.(check (list string)) "registered names"
    [ "cubic"; "reno"; "vegas"; "remy"; "remy-phi" ]
    Cc_algo.names;
  List.iter
    (fun a ->
      match Cc_algo.of_name (Cc_algo.name a) with
      | Some b -> Alcotest.(check string) "of_name round-trips" (Cc_algo.name a) (Cc_algo.name b)
      | None -> Alcotest.fail ("of_name missed " ^ Cc_algo.name a))
    Cc_algo.all;
  Alcotest.(check bool) "unknown rejected" true (Cc_algo.of_name "bogus" = None)

let test_basic_builder_rejects_remy_variants () =
  let raised a =
    try
      ignore (Cc_algo.basic_builder ~ctx:Context.empty a);
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "remy needs a table" true (raised Cc_algo.Remy);
  Alcotest.(check bool) "remy-phi needs a table" true (raised Cc_algo.Remy_phi)

(* {2 Phi_client} *)

let test_phi_client_lifecycle () =
  let engine = Engine.create () in
  let server = Context_server.create engine ~capacity_bps:15e6 () in
  let policy = Policy.create () in
  let client = Phi_client.create ~server ~policy ~path:"dumbbell" () in
  Alcotest.(check bool) "no context yet" true (Phi_client.last_context client = None);
  let cc = Phi_client.factory client () in
  Alcotest.(check bool) "controller built" true (cc.Phi_tcp.Cc.cwnd >= 1.);
  Alcotest.(check int) "lookup registered" 1 (Context_server.active_connections server ~path:"dumbbell");
  Alcotest.(check bool) "context recorded" true (Phi_client.last_context client <> None);
  Alcotest.(check bool) "choice recorded" true (Phi_client.last_choice client <> None)

(* {2 Priority} *)

let test_priority_allocation_proportional () =
  let w = Priority.allocate ~total_weight:8. ~priorities:[| 3.; 1. |] in
  Alcotest.(check (array (float 1e-9))) "3:1 split" [| 6.; 2. |] w

let test_priority_ensemble_sums_to_n () =
  let w = Priority.ensemble_weights ~priorities:[| 4.; 1.; 1.; 1.; 1. |] in
  Alcotest.(check (float 1e-9)) "sums to 5" 5. (Array.fold_left ( +. ) 0. w)

let test_priority_rejects_bad_input () =
  let raised f = try f (); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "zero priority" true
    (raised (fun () -> ignore (Priority.allocate ~total_weight:1. ~priorities:[| 0. |])));
  Alcotest.(check bool) "empty" true
    (raised (fun () -> ignore (Priority.allocate ~total_weight:1. ~priorities:[||])))

let test_priority_factories () =
  let factories = Priority.cc_factories ~priorities:[| 2.; 1. |] in
  Alcotest.(check int) "one per flow" 2 (Array.length factories);
  let cc = factories.(0) () in
  Alcotest.(check bool) "weighted name" true
    (String.length cc.Phi_tcp.Cc.name > 4)

let prop_server_context_always_valid =
  QCheck.Test.make ~name:"context server estimates stay in range" ~count:100
    QCheck.(pair (int_range 0 10_000) (list_of_size Gen.(int_range 0 30) (pair (int_range 0 1_000_000) (int_range 1 100))))
    (fun (seed, reports) ->
      ignore seed;
      let engine = Engine.create () in
      let server = Context_server.create engine ~capacity_bps:1e6 () in
      List.iter
        (fun (bytes, deci_duration) ->
          Context_server.report server ~path:"p" ~bytes
            ~duration_s:(float_of_int deci_duration /. 10.)
            ~min_rtt:0.1
            ~mean_rtt:(0.1 +. (float_of_int (bytes mod 100) /. 1000.))
            ~retransmitted:(bytes mod 7) ~segments:(1 + (bytes mod 50)))
        reports;
      let c = Context_server.peek server ~path:"p" in
      c.Context.utilization >= 0.
      && c.Context.utilization <= 1.
      && c.Context.queue_delay_s >= 0.
      && c.Context.loss_rate >= 0.
      && c.Context.loss_rate <= 1.)

let prop_policy_choice_always_constructible =
  QCheck.Test.make ~name:"policy choices always build through the basic builder" ~count:200
    QCheck.(
      quad (float_bound_inclusive 1.) (float_bound_inclusive 0.5) (int_range 0 200)
        (float_bound_inclusive 0.2))
    (fun (u, q, n, l) ->
      let policy = Policy.create () in
      let context =
        { Context.utilization = u; queue_delay_s = q; competing_senders = n; loss_rate = l }
      in
      (* the builder rejects invalid parameters, so constructing is the check *)
      let cc = Cc_algo.basic_builder ~ctx:context (Policy.choice_for policy context) in
      cc.Phi_tcp.Cc.cwnd >= 1.)

(* {2 Secure_agg} *)

let test_secure_agg_sum_recovered () =
  let rng = Phi_util.Prng.create ~seed:31 in
  let session = Secure_agg.create rng ~participants:5 in
  let values = [ 0.81; 0.12; 0.55; 0.97; 0.33 ] in
  let shares = List.mapi (fun p v -> Secure_agg.submit session ~participant:p ~value:v) values in
  let total = List.fold_left ( +. ) 0. values in
  Alcotest.(check (float 1e-5)) "sum" total (Secure_agg.aggregate session shares);
  Alcotest.(check (float 1e-5)) "mean" (total /. 5.) (Secure_agg.mean session shares)

let test_secure_agg_share_masks_value () =
  let rng = Phi_util.Prng.create ~seed:32 in
  let session = Secure_agg.create rng ~participants:3 in
  let share = Secure_agg.submit session ~participant:0 ~value:0.5 in
  (* The raw fixed-point encoding of 0.5 is 500000; a masked share should
     be nowhere near it (masks are full-range 64-bit). *)
  Alcotest.(check bool) "masked" true (Int64.abs share > 1_000_000_000L)

let test_secure_agg_rounds_independent () =
  let rng = Phi_util.Prng.create ~seed:33 in
  let session = Secure_agg.create rng ~participants:2 in
  let round participant_values =
    List.mapi (fun p v -> Secure_agg.submit session ~participant:p ~value:v) participant_values
  in
  let r1 = round [ 0.25; 0.75 ] in
  let r2 = round [ 0.10; 0.20 ] in
  Alcotest.(check (float 1e-5)) "round 1" 1.0 (Secure_agg.aggregate session r1);
  Alcotest.(check (float 1e-5)) "round 2" 0.30 (Secure_agg.aggregate session r2)

let test_secure_agg_validation () =
  let rng = Phi_util.Prng.create ~seed:34 in
  let raised f = try f (); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "1 participant rejected" true
    (raised (fun () -> ignore (Secure_agg.create rng ~participants:1)));
  let session = Secure_agg.create rng ~participants:2 in
  Alcotest.(check bool) "unknown participant" true
    (raised (fun () -> ignore (Secure_agg.submit session ~participant:7 ~value:0.)));
  Alcotest.(check bool) "wrong share count" true
    (raised (fun () -> ignore (Secure_agg.aggregate session [ 1L ])))

let prop_secure_agg_exact =
  QCheck.Test.make ~name:"secure aggregation always recovers the sum" ~count:100
    QCheck.(pair (int_range 2 8) (int_range 0 10_000))
    (fun (n, seed) ->
      let rng = Phi_util.Prng.create ~seed in
      let session = Secure_agg.create rng ~participants:n in
      let values = List.init n (fun i -> float_of_int ((i * 13 mod 97) - 40) /. 7.) in
      let shares =
        List.mapi (fun p v -> Secure_agg.submit session ~participant:p ~value:v) values
      in
      let total = List.fold_left ( +. ) 0. values in
      Float.abs (Secure_agg.aggregate session shares -. total) < 1e-4)

(* {2 Adaptation} *)

let test_jitter_buffer_from_shared () =
  let samples = Array.init 100 (fun i -> float_of_int (i + 1)) in
  (* p95 of 1..100 with interpolation is 95.05; + 5 margin. *)
  Alcotest.(check (float 0.2)) "p95 + margin" 100.
    (Adaptation.jitter_buffer_ms ~shared_jitter_ms:samples ());
  Alcotest.(check bool) "below cold start" true
    (Adaptation.jitter_buffer_ms ~shared_jitter_ms:samples ()
    < Adaptation.cold_start_jitter_buffer_ms)

let test_late_packet_fraction () =
  let jitter = [| 1.; 2.; 3.; 50. |] in
  Alcotest.(check (float 1e-9)) "one late" 0.25
    (Adaptation.late_packet_fraction ~jitter_ms:jitter ~buffer_ms:10.);
  Alcotest.(check (float 1e-9)) "empty" 0.
    (Adaptation.late_packet_fraction ~jitter_ms:[||] ~buffer_ms:10.)

let test_dupack_threshold_rises_with_reordering () =
  let none = Array.make 100 0 in
  Alcotest.(check int) "standard 3" 3 (Adaptation.dupack_threshold ~reorder_depths:none ());
  let deep = Array.init 100 (fun i -> if i < 20 then 6 else 0) in
  let t = Adaptation.dupack_threshold ~reorder_depths:deep () in
  Alcotest.(check int) "raised past depth" 7 t;
  Alcotest.(check int) "empty sample" 3 (Adaptation.dupack_threshold ~reorder_depths:[||] ())

let suite =
  [
    ("power formula", `Quick, test_power_formula);
    ("power with loss", `Quick, test_power_with_loss);
    ("log power", `Quick, test_log_power);
    ("compare desc", `Quick, test_compare_desc);
    ("severity monotone", `Quick, test_severity_monotone_in_utilization);
    ("bucketize edges", `Quick, test_bucketize_edges);
    ("bucket distance", `Quick, test_bucket_distance);
    ("server empty context", `Quick, test_server_empty_context);
    ("server active counting", `Quick, test_server_active_counting);
    ("server utilization estimate", `Quick, test_server_utilization_estimate);
    ("server window expiry", `Quick, test_server_window_expiry);
    ("server loss ewma", `Quick, test_server_loss_ewma);
    ("server oracle override", `Quick, test_server_oracle_override);
    ("server learns capacity", `Quick, test_server_learns_capacity);
    ("policy heuristic monotone", `Quick, test_policy_heuristic_monotone);
    ("policy learned exact hit", `Quick, test_policy_learned_exact_hit);
    ("policy nearest fallback", `Quick, test_policy_nearest_fallback);
    ("policy learns any algorithm", `Quick, test_policy_learns_any_algorithm);
    ("policy learned listing", `Quick, test_policy_learned_listing);
    ("cc_algo registry", `Quick, test_cc_algo_registry);
    ("basic builder rejects remy variants", `Quick, test_basic_builder_rejects_remy_variants);
    ("phi client lifecycle", `Quick, test_phi_client_lifecycle);
    ("priority allocation", `Quick, test_priority_allocation_proportional);
    ("priority ensemble sum", `Quick, test_priority_ensemble_sums_to_n);
    ("priority rejects bad input", `Quick, test_priority_rejects_bad_input);
    ("priority factories", `Quick, test_priority_factories);
    QCheck_alcotest.to_alcotest prop_server_context_always_valid;
    QCheck_alcotest.to_alcotest prop_policy_choice_always_constructible;
    ("secure agg sum recovered", `Quick, test_secure_agg_sum_recovered);
    ("secure agg share masked", `Quick, test_secure_agg_share_masks_value);
    ("secure agg rounds independent", `Quick, test_secure_agg_rounds_independent);
    ("secure agg validation", `Quick, test_secure_agg_validation);
    QCheck_alcotest.to_alcotest prop_secure_agg_exact;
    ("jitter buffer from shared", `Quick, test_jitter_buffer_from_shared);
    ("late packet fraction", `Quick, test_late_packet_fraction);
    ("dupack threshold", `Quick, test_dupack_threshold_rises_with_reordering);
  ]
