(* Tests for phi_remy: memory signals, whisker geometry, rule tables,
   serialization, the Remy controller driving the shared Phi_tcp.Sender,
   and a smoke test of the trainer's evaluation loop. *)

module Engine = Phi_sim.Engine
module Topology = Phi_net.Topology
module Link = Phi_net.Link
module Prng = Phi_util.Prng
open Phi_remy

(* {2 Memory} *)

let test_memory_initial_state () =
  let m = Memory.create () in
  Alcotest.(check (float 0.)) "ack ewma" 0. (Memory.ack_ewma m);
  Alcotest.(check (float 0.)) "send ewma" 0. (Memory.send_ewma m);
  Alcotest.(check (float 0.)) "rtt ratio" 1. (Memory.rtt_ratio m);
  Alcotest.(check bool) "no min rtt" true (Memory.min_rtt m = None)

let test_memory_rtt_ratio () =
  let m = Memory.create () in
  Memory.on_ack m ~now:0.1 ~echo_sent_at:0.;  (* rtt 0.1 -> min *)
  Alcotest.(check (float 1e-9)) "ratio 1 at min" 1. (Memory.rtt_ratio m);
  Memory.on_ack m ~now:0.45 ~echo_sent_at:0.25;  (* rtt 0.2 *)
  Alcotest.(check (float 1e-9)) "ratio 2" 2. (Memory.rtt_ratio m);
  Alcotest.(check (option (float 1e-9))) "min rtt kept" (Some 0.1) (Memory.min_rtt m)

let test_memory_ewma_updates () =
  let m = Memory.create () in
  Memory.on_ack m ~now:1.0 ~echo_sent_at:0.9;
  (* First ack seeds the timestamps; EWMAs update from the second on. *)
  Memory.on_ack m ~now:1.1 ~echo_sent_at:0.95;
  Alcotest.(check bool) "ack ewma positive" true (Memory.ack_ewma m > 0.);
  Alcotest.(check bool) "send ewma positive" true (Memory.send_ewma m > 0.)

let test_memory_point_in_unit_cube () =
  let m = Memory.create () in
  Memory.on_ack m ~now:2. ~echo_sent_at:0.5;
  Memory.on_ack m ~now:5. ~echo_sent_at:1.;
  Memory.set_utilization m 0.7;
  List.iter
    (fun dims ->
      let p = Memory.to_point m ~dims in
      Alcotest.(check int) "dims" dims (Array.length p);
      Array.iter
        (fun x -> Alcotest.(check bool) "in [0,1]" true (x >= 0. && x <= 1.))
        p)
    [ Memory.dims_remy; Memory.dims_phi ]

let test_memory_utilization_clamped () =
  let m = Memory.create () in
  Memory.set_utilization m 1.5;
  Alcotest.(check (float 0.)) "clamped high" 1. (Memory.utilization m);
  Memory.set_utilization m (-0.5);
  Alcotest.(check (float 0.)) "clamped low" 0. (Memory.utilization m)

let test_memory_reset () =
  let m = Memory.create () in
  Memory.on_ack m ~now:1. ~echo_sent_at:0.5;
  Memory.set_utilization m 0.4;
  Memory.reset m;
  Alcotest.(check (float 0.)) "ratio reset" 1. (Memory.rtt_ratio m);
  (* Utilization survives reset: it is externally owned. *)
  Alcotest.(check (float 0.)) "util kept" 0.4 (Memory.utilization m)

(* {2 Whisker} *)

let test_whisker_apply_bounds () =
  let a = { Whisker.window_increment = 5.; window_multiple = 2.; intersend_s = 0.001 } in
  Alcotest.(check (float 0.)) "cap at 1024" 1024. (Whisker.apply a ~cwnd:1000.);
  let shrink = { Whisker.window_increment = -5.; window_multiple = 0.1; intersend_s = 0.001 } in
  Alcotest.(check (float 0.)) "floor at 1" 1. (Whisker.apply shrink ~cwnd:2.)

let test_whisker_clamp_action () =
  let wild = { Whisker.window_increment = 99.; window_multiple = 0.; intersend_s = 10. } in
  let c = Whisker.clamp_action wild in
  Alcotest.(check (float 0.)) "inc" 32. c.Whisker.window_increment;
  Alcotest.(check (float 0.)) "mult" 0.1 c.Whisker.window_multiple;
  Alcotest.(check (float 0.)) "isend" 0.5 c.Whisker.intersend_s

let test_whisker_contains_boundaries () =
  let box = Whisker.root_box ~dims:2 in
  Alcotest.(check bool) "origin" true (Whisker.contains box [| 0.; 0. |]);
  Alcotest.(check bool) "interior" true (Whisker.contains box [| 0.5; 0.9 |]);
  Alcotest.(check bool) "upper face inclusive" true (Whisker.contains box [| 1.; 1. |]);
  let sub = { Whisker.lo = [| 0.; 0. |]; hi = [| 0.5; 0.5 |] } in
  Alcotest.(check bool) "internal face exclusive" false (Whisker.contains sub [| 0.5; 0.2 |])

let test_whisker_split_partitions () =
  let box = Whisker.root_box ~dims:3 in
  let children = Whisker.split_box box in
  Alcotest.(check int) "2^3 children" 8 (List.length children);
  (* Any interior point lands in exactly one child. *)
  let rng = Prng.create ~seed:2 in
  for _ = 1 to 200 do
    let p = Array.init 3 (fun _ -> Prng.float rng) in
    let hits = List.filter (fun c -> Whisker.contains c p) children in
    Alcotest.(check int) "exactly one child" 1 (List.length hits)
  done

let test_whisker_line_roundtrip () =
  let w =
    Whisker.create
      { Whisker.lo = [| 0.25; 0. |]; hi = [| 0.5; 1. |] }
      { Whisker.window_increment = -2.; window_multiple = 1.25; intersend_s = 0.0123 }
  in
  let w' = Whisker.of_line (Whisker.to_line w) in
  Alcotest.(check (array (float 1e-12))) "lo" w.Whisker.box.Whisker.lo w'.Whisker.box.Whisker.lo;
  Alcotest.(check (array (float 1e-12))) "hi" w.Whisker.box.Whisker.hi w'.Whisker.box.Whisker.hi;
  Alcotest.(check (float 1e-12)) "action" w.Whisker.action.Whisker.intersend_s
    w'.Whisker.action.Whisker.intersend_s

let test_whisker_of_line_rejects_garbage () =
  let raised =
    try ignore (Whisker.of_line "nonsense"); false with Whisker.Parse_error _ -> true
  in
  Alcotest.(check bool) "garbage rejected" true raised

(* {2 Rule_table} *)

let test_table_lookup_pure () =
  let t = Rule_table.create ~dims:3 Whisker.default_action in
  Alcotest.(check int) "one whisker" 1 (Rule_table.size t);
  let w = Rule_table.lookup t [| 0.1; 0.2; 0.3 |] in
  let w' = Rule_table.lookup t [| 0.1; 0.2; 0.3 |] in
  Alcotest.(check bool) "same whisker, no side effects" true (w == w');
  Alcotest.(check int) "index agrees" 0 (Rule_table.lookup_index t [| 0.1; 0.2; 0.3 |]);
  Alcotest.(check int) "lookups leave the generation alone" 0 (Rule_table.generation t)

let test_table_split_preserves_partition () =
  let t = Rule_table.create ~dims:3 Whisker.default_action in
  let root = List.hd (Rule_table.whiskers t) in
  Rule_table.split t root;
  Alcotest.(check int) "8 children" 8 (Rule_table.size t);
  let child = Rule_table.lookup t [| 0.9; 0.9; 0.9 |] in
  Rule_table.split t child;
  Alcotest.(check int) "15 whiskers" 15 (Rule_table.size t);
  let rng = Prng.create ~seed:3 in
  for _ = 1 to 500 do
    let p = Array.init 3 (fun _ -> Prng.float rng) in
    ignore (Rule_table.lookup t p) (* must not raise *)
  done

let test_table_generation_and_set_action () =
  let t = Rule_table.create ~dims:2 Whisker.default_action in
  Alcotest.(check int) "fresh table at generation 0" 0 (Rule_table.generation t);
  let root = List.hd (Rule_table.whiskers t) in
  Rule_table.split t root;
  Alcotest.(check int) "split bumps" 1 (Rule_table.generation t);
  let w = Rule_table.lookup t [| 0.9; 0.9 |] in
  Rule_table.split_axis t w ~axis:0;
  Alcotest.(check int) "split_axis bumps" 2 (Rule_table.generation t);
  let w = Rule_table.lookup t [| 0.1; 0.1 |] in
  Rule_table.set_action t w
    { Whisker.window_increment = 99.; window_multiple = 1.; intersend_s = 0.001 };
  Alcotest.(check int) "set_action bumps" 3 (Rule_table.generation t);
  (* set_action clamps like Whisker.create does. *)
  Alcotest.(check (float 0.)) "action clamped" 32. w.Whisker.action.Whisker.window_increment;
  let stranger = Whisker.create (Whisker.root_box ~dims:2) Whisker.default_action in
  let raised =
    try
      Rule_table.set_action t stranger Whisker.default_action;
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "unknown whisker rejected" true raised

let test_table_serialize_roundtrip () =
  let t = Rule_table.create ~dims:4 Whisker.default_action in
  Rule_table.split t (List.hd (Rule_table.whiskers t));
  let t' = Rule_table.deserialize (Rule_table.serialize t) in
  Alcotest.(check int) "dims" 4 (Rule_table.dims t');
  Alcotest.(check int) "size" (Rule_table.size t) (Rule_table.size t');
  let rng = Prng.create ~seed:4 in
  for _ = 1 to 100 do
    let p = Array.init 4 (fun _ -> Prng.float rng) in
    let a = (Rule_table.lookup t p).Whisker.action in
    let b = (Rule_table.lookup t' p).Whisker.action in
    Alcotest.(check (float 0.)) "same action" a.Whisker.intersend_s b.Whisker.intersend_s
  done

let test_table_split_axis () =
  let t = Rule_table.create ~dims:4 Whisker.default_action in
  let root = List.hd (Rule_table.whiskers t) in
  Rule_table.split_axis t root ~axis:3;
  Alcotest.(check int) "two children" 2 (Rule_table.size t);
  let low = Rule_table.lookup t [| 0.2; 0.2; 0.2; 0.1 |] in
  let high = Rule_table.lookup t [| 0.2; 0.2; 0.2; 0.9 |] in
  Alcotest.(check bool) "distinct whiskers by utilization" true (low != high);
  (* Other axes are untouched: same whisker regardless of other coords. *)
  let low2 = Rule_table.lookup t [| 0.9; 0.9; 0.9; 0.1 |] in
  Alcotest.(check bool) "same low-util whisker" true (low == low2);
  let raised =
    try ignore (Rule_table.split_axis t low ~axis:7); false with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "bad axis rejected" true raised

let test_table_extrude () =
  let t = Rule_table.create ~dims:3 Whisker.default_action in
  Rule_table.split t (List.hd (Rule_table.whiskers t));
  let t4 = Rule_table.extrude t in
  Alcotest.(check int) "dims + 1" 4 (Rule_table.dims t4);
  Alcotest.(check int) "same whisker count" (Rule_table.size t) (Rule_table.size t4);
  (* Any utilization value matches the lifted whiskers. *)
  List.iter (fun u -> ignore (Rule_table.lookup t4 [| 0.2; 0.2; 0.2; u |])) [ 0.; 0.5; 1. ]

let test_pretrained_tables_load () =
  let remy = Pretrained.remy () in
  Alcotest.(check int) "remy dims" 3 (Rule_table.dims remy);
  let phi = Pretrained.remy_phi () in
  Alcotest.(check int) "phi dims" 4 (Rule_table.dims phi);
  ignore (Rule_table.lookup remy [| 0.; 0.; 0. |]);
  ignore (Rule_table.lookup phi [| 0.; 0.; 0.; 0.9 |])

let prop_partition_total =
  QCheck.Test.make ~name:"split tables cover every point exactly once" ~count:60
    QCheck.(pair (int_range 0 3) (int_range 0 10_000))
    (fun (splits, seed) ->
      let rng = Prng.create ~seed in
      let t = Rule_table.create ~dims:3 Whisker.default_action in
      for _ = 1 to splits do
        let ws = Rule_table.whiskers t in
        (match List.nth_opt ws (Prng.int rng ~bound:(List.length ws)) with
        | Some target -> Rule_table.split t target
        | None -> Alcotest.fail "empty whisker list")
      done;
      let ok = ref true in
      for _ = 1 to 100 do
        let p = Array.init 3 (fun _ -> Prng.float rng) in
        let hits =
          List.filter (fun w -> Whisker.contains w.Whisker.box p) (Rule_table.whiskers t)
        in
        if List.length hits <> 1 then ok := false
      done;
      !ok)

(* {2 Remy controller on the unified sender} *)

let run_remy_transfer ?(util = `None) ?(until = 300.) ?(drop = 0.) ~table ~total () =
  let engine = Engine.create () in
  let dumbbell = Topology.dumbbell engine { Topology.paper_spec with Topology.n = 1 } in
  if drop > 0. then
    Link.set_fault_injection dumbbell.Topology.bottleneck ~rng:(Prng.create ~seed:9)
      ~drop_probability:drop;
  let receiver =
    Phi_tcp.Receiver.create engine ~node:dumbbell.Topology.receivers.(0) ~flow:0 ~peer:0
  in
  let sender =
    Phi_tcp.Sender.create engine
      ~node:dumbbell.Topology.senders.(0)
      ~flow:0
      ~dst:(Topology.receiver_id dumbbell 0)
      ~cc:(Remy_cc.make ~table:(Compiled_table.compile table) ~util ())
      ~total_segments:total ()
  in
  Phi_tcp.Sender.start sender;
  Engine.run ~until engine;
  (sender, receiver, dumbbell)

let test_remy_cc_shape () =
  (* The Remy control law rides the shared transport as a controller:
     go-back-N recovery (no SACK fast retransmit) and the initial
     whisker's intersend as the pacing gap. *)
  let action = { Whisker.window_increment = 3.; window_multiple = 1.; intersend_s = 0.0123 } in
  let table = Rule_table.create ~dims:3 action in
  let cc = Remy_cc.make ~table:(Compiled_table.compile table) ~util:`None () in
  Alcotest.(check bool) "go-back-N recovery" true
    (match cc.Phi_tcp.Cc.recovery with Phi_tcp.Cc.Go_back_n -> true | Phi_tcp.Cc.Sack -> false);
  Alcotest.(check (float 1e-12)) "paced by the whisker" 0.0123 cc.Phi_tcp.Cc.pacing_gap_s;
  Alcotest.(check string) "named" "remy" cc.Phi_tcp.Cc.name

let test_remy_sender_completes () =
  let table = Rule_table.create ~dims:3 Whisker.default_action in
  let sender, receiver, _ = run_remy_transfer ~table ~total:200 () in
  Alcotest.(check bool) "completed" true (Phi_tcp.Sender.completed sender);
  Alcotest.(check int) "receiver got all" 200 (Phi_tcp.Receiver.segments_received receiver)

let test_remy_sender_pacing_limits_rate () =
  (* Huge window but 10 ms intersend: rate must stay near 100 pkt/s. *)
  let action = { Whisker.window_increment = 5.; window_multiple = 2.; intersend_s = 0.01 } in
  let table = Rule_table.create ~dims:3 action in
  let sender, _, _ = run_remy_transfer ~table ~total:300 () in
  let stats = Phi_tcp.Sender.stats sender in
  let rate =
    float_of_int stats.Phi_tcp.Flow.segments /. Phi_tcp.Flow.duration stats
  in
  Alcotest.(check bool) "paced around 100 pkt/s" true (rate > 60. && rate < 130.)

let test_remy_sender_recovers_from_loss () =
  let table = Rule_table.create ~dims:3 Whisker.default_action in
  let sender, receiver, _ =
    run_remy_transfer ~until:600. ~drop:0.05 ~table ~total:150 ()
  in
  Alcotest.(check bool) "completed under loss" true (Phi_tcp.Sender.completed sender);
  Alcotest.(check bool) "receiver consistent" true
    (Phi_tcp.Receiver.next_expected receiver = 150)

let test_remy_cc_dims_validation () =
  let table = Rule_table.create ~dims:3 Whisker.default_action in
  let raised =
    try
      ignore (Remy_cc.make ~table:(Compiled_table.compile table) ~util:(`Live (fun () -> 0.5)) ());
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "dims mismatch rejected" true raised

let test_trainer_evaluate_smoke () =
  let table = Rule_table.create ~dims:3 Whisker.default_action in
  let scenario =
    { Trainer.paper_scenario with Trainer.duration_s = 10. }
  in
  let r = Trainer.evaluate ~table ~util:`None ~seeds:[ 1 ] [ scenario ] in
  Alcotest.(check bool) "connections ran" true (r.Trainer.connections > 0);
  Alcotest.(check bool) "objective finite" true (Float.is_finite r.Trainer.objective)

let test_trainer_ideal_uses_4dims () =
  let table = Rule_table.create ~dims:4 Whisker.default_action in
  let scenario = { Trainer.paper_scenario with Trainer.duration_s = 10. } in
  let r = Trainer.evaluate ~table ~util:`Ideal ~seeds:[ 1 ] [ scenario ] in
  Alcotest.(check bool) "runs with oracle" true (r.Trainer.connections > 0)

let suite =
  [
    ("memory initial state", `Quick, test_memory_initial_state);
    ("memory rtt ratio", `Quick, test_memory_rtt_ratio);
    ("memory ewma updates", `Quick, test_memory_ewma_updates);
    ("memory point in unit cube", `Quick, test_memory_point_in_unit_cube);
    ("memory utilization clamped", `Quick, test_memory_utilization_clamped);
    ("memory reset", `Quick, test_memory_reset);
    ("whisker apply bounds", `Quick, test_whisker_apply_bounds);
    ("whisker clamp action", `Quick, test_whisker_clamp_action);
    ("whisker contains boundaries", `Quick, test_whisker_contains_boundaries);
    ("whisker split partitions", `Quick, test_whisker_split_partitions);
    ("whisker line roundtrip", `Quick, test_whisker_line_roundtrip);
    ("whisker rejects garbage", `Quick, test_whisker_of_line_rejects_garbage);
    ("table lookup pure", `Quick, test_table_lookup_pure);
    ("table split partition", `Quick, test_table_split_preserves_partition);
    ("table generation and set_action", `Quick, test_table_generation_and_set_action);
    ("table serialize roundtrip", `Quick, test_table_serialize_roundtrip);
    ("table split axis", `Quick, test_table_split_axis);
    ("table extrude", `Quick, test_table_extrude);
    ("pretrained tables load", `Quick, test_pretrained_tables_load);
    QCheck_alcotest.to_alcotest prop_partition_total;
    ("remy cc shape", `Quick, test_remy_cc_shape);
    ("remy sender completes", `Quick, test_remy_sender_completes);
    ("remy sender pacing", `Quick, test_remy_sender_pacing_limits_rate);
    ("remy sender loss recovery", `Quick, test_remy_sender_recovers_from_loss);
    ("remy cc dims validation", `Quick, test_remy_cc_dims_validation);
    ("trainer evaluate smoke", `Slow, test_trainer_evaluate_smoke);
    ("trainer ideal 4 dims", `Slow, test_trainer_ideal_uses_4dims);
  ]
