(* Tests for Phi_runner.Pool: submission-order determinism, per-job
   exception isolation, the serial --jobs 1 path, and end-to-end sweep
   equivalence (a parallel Figure-2a-style sweep must be bit-for-bit
   identical to the serial one). *)

module Pool = Phi_runner.Pool
open Phi_experiments

(* A job with input-dependent cost, so parallel completion order differs
   from submission order and ordered reassembly is actually exercised. *)
let lumpy x =
  let n = 1 + ((x * 7919) mod 5000) in
  let acc = ref x in
  for i = 1 to n do
    acc := (!acc * 31) + i
  done;
  !acc

let test_map_matches_serial_map () =
  let inputs = List.init 100 (fun i -> i) in
  let expected = List.map lumpy inputs in
  List.iter
    (fun jobs ->
      Alcotest.(check (list int))
        (Printf.sprintf "jobs=%d equals serial List.map" jobs)
        expected
        (Pool.map ~jobs lumpy inputs))
    [ 1; 2; 4; 13 ]

let test_more_jobs_than_items () =
  Alcotest.(check (list int)) "batch smaller than pool" [ 10; 20 ]
    (Pool.map ~jobs:16 (fun x -> x * 10) [ 1; 2 ])

let test_empty_batch () =
  Alcotest.(check (list int)) "empty batch" [] (Pool.map ~jobs:4 lumpy []);
  Alcotest.(check (list int)) "empty batch serial" [] (Pool.map ~jobs:1 lumpy [])

let test_jobs_one_runs_in_submission_order () =
  (* The serial path runs in the calling domain, so unsynchronized
     mutation from the job is safe and observes strict submission
     order. *)
  let seen = ref [] in
  let result =
    Pool.map ~jobs:1
      (fun x ->
        seen := x :: !seen;
        x)
      [ 5; 1; 4; 2 ]
  in
  Alcotest.(check (list int)) "results in order" [ 5; 1; 4; 2 ] result;
  Alcotest.(check (list int)) "executed in order" [ 5; 1; 4; 2 ] (List.rev !seen)

let test_invalid_jobs_rejected () =
  Alcotest.check_raises "jobs=0" (Invalid_argument "Pool.try_map: jobs must be >= 1")
    (fun () -> ignore (Pool.map ~jobs:0 lumpy [ 1 ]))

let test_default_jobs_positive () =
  Alcotest.(check bool) "default_jobs >= 1" true (Pool.default_jobs () >= 1);
  Alcotest.(check bool) "available_cores >= 1" true (Pool.available_cores () >= 1)

(* {2 Exception isolation} *)

exception Boom of int

let boomy x = if x mod 3 = 0 then raise (Boom x) else x * 2

let test_try_map_isolates_failures () =
  List.iter
    (fun jobs ->
      let results = Pool.try_map ~jobs boomy [ 0; 1; 2; 3; 4; 5 ] in
      Alcotest.(check int) "all six accounted for" 6 (List.length results);
      List.iteri
        (fun i r ->
          match r with
          | Ok v ->
            Alcotest.(check bool) "survivor at non-multiple" true (i mod 3 <> 0);
            Alcotest.(check int) "survivor value" (i * 2) v
          | Error (e : Pool.error) ->
            Alcotest.(check bool) "failure at multiple of 3" true (i mod 3 = 0);
            Alcotest.(check int) "error index" i e.Pool.index;
            (match e.Pool.exn with
            | Boom x -> Alcotest.(check int) "exception payload" i x
            | _ -> Alcotest.fail "wrong exception"))
        results)
    [ 1; 4 ]

let test_map_reports_all_failures_after_draining () =
  match Pool.map ~jobs:4 boomy [ 0; 1; 2; 3; 4; 5; 6 ] with
  | _ -> Alcotest.fail "expected Job_failed"
  | exception Pool.Job_failed errors ->
    Alcotest.(check (list int)) "every failing index, submission order" [ 0; 3; 6 ]
      (List.map (fun (e : Pool.error) -> e.Pool.index) errors);
    List.iter
      (fun (e : Pool.error) ->
        Alcotest.(check bool) "error renders" true
          (String.length (Pool.error_to_string e) > 0))
      errors

(* {2 Sweep equivalence: parallel experiment == serial experiment} *)

let tiny_grid = { Sweep.ssthresh = [ 2.; 64. ]; init_w = [ 2.; 16. ]; beta = [ 0.2 ] }

let check_point msg (a : Sweep.point) (b : Sweep.point) =
  Alcotest.(check string)
    (msg ^ " params")
    (Phi_tcp.Cubic.params_to_string a.Sweep.params)
    (Phi_tcp.Cubic.params_to_string b.Sweep.params);
  Alcotest.(check (float 0.)) (msg ^ " throughput") a.Sweep.mean_throughput_bps
    b.Sweep.mean_throughput_bps;
  Alcotest.(check (float 0.)) (msg ^ " qdelay") a.Sweep.mean_queueing_delay_s
    b.Sweep.mean_queueing_delay_s;
  Alcotest.(check (float 0.)) (msg ^ " loss") a.Sweep.mean_loss_rate b.Sweep.mean_loss_rate;
  Alcotest.(check (float 0.)) (msg ^ " power") a.Sweep.mean_power b.Sweep.mean_power

let test_sweep_identical_across_jobs () =
  (* The Figure 2a workload on a reduced budget: every per-setting
     number must be identical at --jobs 1 and --jobs 4. *)
  let config = { Scenario.low_utilization with Scenario.duration_s = 20. } in
  let seeds = [ 1; 2 ] in
  let serial = Sweep.run ~jobs:1 config tiny_grid ~seeds in
  let parallel = Sweep.run ~jobs:4 config tiny_grid ~seeds in
  Alcotest.(check int) "same point count" (List.length serial.Sweep.points)
    (List.length parallel.Sweep.points);
  List.iter2 (fun a b -> check_point "grid point" a b) serial.Sweep.points
    parallel.Sweep.points;
  check_point "default point" serial.Sweep.default_point parallel.Sweep.default_point;
  check_point "optimal point" (Sweep.optimal serial) (Sweep.optimal parallel)

let test_run_many_identical_across_jobs () =
  let seeds = [ 1; 2; 3; 4 ] in
  let serial = Adaptation_experiment.run_many ~jobs:1 ~n_shared:300 ~n_test:300 ~seeds () in
  let parallel = Adaptation_experiment.run_many ~jobs:3 ~n_shared:300 ~n_test:300 ~seeds () in
  List.iter2
    (fun (a : Adaptation_experiment.result) (b : Adaptation_experiment.result) ->
      Alcotest.(check (float 0.)) "informed buffer" a.Adaptation_experiment.jitter.Adaptation_experiment.informed_buffer_ms
        b.Adaptation_experiment.jitter.Adaptation_experiment.informed_buffer_ms;
      Alcotest.(check int) "dupack threshold"
        a.Adaptation_experiment.dupack.Adaptation_experiment.recommended_threshold
        b.Adaptation_experiment.dupack.Adaptation_experiment.recommended_threshold)
    serial parallel;
  (* And seed order is preserved: element i is seed (i+1)'s serial run. *)
  List.iteri
    (fun i (p : Adaptation_experiment.result) ->
      let direct = Adaptation_experiment.run ~n_shared:300 ~n_test:300 ~seed:(i + 1) () in
      Alcotest.(check (float 0.)) "matches direct run"
        direct.Adaptation_experiment.jitter.Adaptation_experiment.informed_buffer_ms
        p.Adaptation_experiment.jitter.Adaptation_experiment.informed_buffer_ms)
    parallel

let suite =
  [
    ("pool map equals serial map", `Quick, test_map_matches_serial_map);
    ("pool wider than batch", `Quick, test_more_jobs_than_items);
    ("pool empty batch", `Quick, test_empty_batch);
    ("pool jobs=1 serial order", `Quick, test_jobs_one_runs_in_submission_order);
    ("pool invalid jobs rejected", `Quick, test_invalid_jobs_rejected);
    ("pool default jobs positive", `Quick, test_default_jobs_positive);
    ("pool exception isolation", `Quick, test_try_map_isolates_failures);
    ("pool aggregated failure report", `Quick, test_map_reports_all_failures_after_draining);
    ("sweep identical across jobs", `Slow, test_sweep_identical_across_jobs);
    ("run_many identical across jobs", `Quick, test_run_many_identical_across_jobs);
  ]
