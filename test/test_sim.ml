(* Tests for phi_sim: the 4-ary heap, the ring buffer, and the
   discrete-event engine with its recycled event cells. *)

module Heap = Phi_sim.Heap
module Ring = Phi_sim.Ring
module Engine = Phi_sim.Engine
module Invariant = Phi_sim.Invariant

(* Strict-mode raise behavior only holds while the sanitizer is
   disarmed; with PHI_SANITIZE=1 anomalies are recorded instead. *)
let with_sanitizer_disarmed f =
  let prev = Invariant.enabled () in
  Invariant.set_enabled false;
  Fun.protect ~finally:(fun () -> Invariant.set_enabled prev) f

(* {2 Heap} *)

let test_heap_empty () =
  let h : int Heap.t = Heap.create () in
  Alcotest.(check bool) "is_empty" true (Heap.is_empty h);
  Alcotest.(check int) "size" 0 (Heap.size h);
  Alcotest.(check bool) "pop none" true (Heap.pop h = None);
  Alcotest.(check bool) "peek none" true (Heap.peek h = None)

let test_heap_orders_by_priority () =
  let h = Heap.create () in
  List.iteri (fun i p -> Heap.push h ~priority:p ~seq:i p) [ 3.; 1.; 2.; 0.5; 5. ];
  let order = ref [] in
  let rec drain () =
    match Heap.pop h with
    | Some (_, _, v) ->
      order := v :: !order;
      drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list (float 0.))) "ascending" [ 0.5; 1.; 2.; 3.; 5. ] (List.rev !order)

let test_heap_fifo_ties () =
  let h = Heap.create () in
  for i = 0 to 9 do
    Heap.push h ~priority:1. ~seq:i i
  done;
  for i = 0 to 9 do
    match Heap.pop h with
    | Some (_, seq, v) ->
      Alcotest.(check int) "fifo order" i seq;
      Alcotest.(check int) "payload" i v
    | None -> Alcotest.fail "heap exhausted early"
  done

let test_heap_grows () =
  let h = Heap.create () in
  for i = 999 downto 0 do
    Heap.push h ~priority:(float_of_int i) ~seq:i i
  done;
  Alcotest.(check int) "size" 1000 (Heap.size h);
  (match Heap.peek h with
  | Some (p, _, _) -> Alcotest.(check (float 0.)) "min on top" 0. p
  | None -> Alcotest.fail "empty");
  Heap.clear h;
  Alcotest.(check bool) "cleared" true (Heap.is_empty h)

(* [Float.compare] is a total order with nan below every other float, so
   a nan priority must sort first deterministically rather than poison
   the sift comparisons (every [<] against nan is false, which under the
   old polymorphic-style comparison could strand elements). *)
let test_heap_nan_total_order () =
  let h = Heap.create () in
  Heap.push h ~priority:1. ~seq:0 "one";
  Heap.push h ~priority:Float.nan ~seq:1 "nan";
  Heap.push h ~priority:2. ~seq:2 "two";
  (match Heap.pop h with
  | Some (p, _, v) ->
    Alcotest.(check bool) "nan first" true (Float.is_nan p);
    Alcotest.(check string) "nan payload" "nan" v
  | None -> Alcotest.fail "empty");
  let rest =
    List.init 2 (fun _ ->
        match Heap.pop h with Some (_, _, v) -> v | None -> Alcotest.fail "short")
  in
  Alcotest.(check (list string)) "rest in order" [ "one"; "two" ] rest;
  Alcotest.(check bool) "drained" true (Heap.is_empty h)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap pops in sorted order" ~count:300
    QCheck.(list (float_bound_exclusive 1000.))
    (fun priorities ->
      let h = Heap.create () in
      List.iteri (fun i p -> Heap.push h ~priority:p ~seq:i ()) priorities;
      let rec drain last =
        match Heap.pop h with
        | None -> true
        | Some (p, _, ()) -> if p < last then false else drain p
      in
      drain neg_infinity)

(* The SoA 4-ary heap against a sorted-list reference model: 10k mixed
   push/pop operations with tie-heavy priorities (8 distinct values, so
   the FIFO tie-break is exercised constantly), then a full drain.
   Every pop must match the model exactly — priority, seq and payload. *)
let prop_heap_matches_reference =
  QCheck.Test.make ~name:"heap matches sorted-list reference over 10k ops" ~count:5
    QCheck.(int_bound 0xFFFFFF)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let h = Heap.create () in
      (* Reference: a list kept sorted by (priority, seq) ascending. *)
      let model = ref [] in
      let insert p s v =
        let rec go = function
          | [] -> [ (p, s, v) ]
          | ((p', s', _) as hd) :: tl ->
            let c = Float.compare p p' in
            if c < 0 || (c = 0 && s < s') then (p, s, v) :: hd :: tl else hd :: go tl
        in
        model := go !model
      in
      let seq = ref 0 in
      let ok = ref true in
      let check_pop () =
        match (Heap.pop h, !model) with
        | Some (p, s, v), (p', s', v') :: tl ->
          model := tl;
          if not (Float.compare p p' = 0 && s = s' && v = v') then ok := false
        | None, [] -> ()
        | Some _, [] | None, _ :: _ -> ok := false
      in
      for _ = 1 to 10_000 do
        if Random.State.int rng 3 < 2 || !model = [] then begin
          let p = float_of_int (Random.State.int rng 8) in
          Heap.push h ~priority:p ~seq:!seq !seq;
          insert p !seq !seq;
          incr seq
        end
        else check_pop ()
      done;
      while !model <> [] || not (Heap.is_empty h) do
        check_pop ()
      done;
      !ok)

(* {2 Ring} *)

let test_ring_fifo () =
  let r = Ring.create () in
  Alcotest.(check bool) "starts empty" true (Ring.is_empty r);
  List.iter (Ring.push r) [ 1; 2; 3; 4; 5 ];
  Alcotest.(check int) "length" 5 (Ring.length r);
  Alcotest.(check (list int)) "fifo" [ 1; 2; 3; 4; 5 ] (List.init 5 (fun _ -> Ring.pop r));
  Alcotest.(check bool) "drained" true (Ring.is_empty r)

(* Interleaved pushes and pops walk head and tail around the backing
   array across several in-place growth cycles; FIFO order must survive
   every wrap. *)
let test_ring_wraparound () =
  let r = Ring.create () in
  let next_in = ref 0 in
  let next_out = ref 0 in
  for _ = 1 to 300 do
    for _ = 1 to 3 do
      Ring.push r !next_in;
      incr next_in
    done;
    Alcotest.(check int) "fifo through wrap" !next_out (Ring.pop r);
    incr next_out
  done;
  while not (Ring.is_empty r) do
    Alcotest.(check int) "drain in order" !next_out (Ring.pop r);
    incr next_out
  done;
  Alcotest.(check int) "every element seen once" !next_in !next_out

let test_ring_peek_fold_clear () =
  let r = Ring.create () in
  List.iter (Ring.push r) [ 1; 2; 3 ];
  Alcotest.(check int) "peek" 1 (Ring.peek r);
  Alcotest.(check int) "peek is non-destructive" 1 (Ring.peek r);
  Alcotest.(check int) "length after peeks" 3 (Ring.length r);
  Alcotest.(check int) "fold sum" 6 (Ring.fold ( + ) 0 r);
  let seen = ref [] in
  Ring.iter (fun v -> seen := v :: !seen) r;
  Alcotest.(check (list int)) "iter head-to-tail" [ 1; 2; 3 ] (List.rev !seen);
  Ring.clear r;
  Alcotest.(check bool) "cleared" true (Ring.is_empty r);
  Alcotest.(check bool) "peek_opt none" true (Ring.peek_opt r = None);
  Alcotest.(check bool) "pop_opt none" true (Ring.pop_opt r = None)

let test_ring_empty_pop_raises () =
  let r : int Ring.t = Ring.create () in
  let raises f = try ignore (f r); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "pop raises" true (raises Ring.pop);
  Alcotest.(check bool) "peek raises" true (raises Ring.peek)

(* {2 Engine} *)

let test_engine_runs_in_time_order () =
  let engine = Engine.create () in
  let log = ref [] in
  let note tag () = log := tag :: !log in
  ignore (Engine.schedule_at engine ~time:3. (note "c"));
  ignore (Engine.schedule_at engine ~time:1. (note "a"));
  ignore (Engine.schedule_at engine ~time:2. (note "b"));
  Engine.run engine;
  Alcotest.(check (list string)) "order" [ "a"; "b"; "c" ] (List.rev !log);
  Alcotest.(check (float 0.)) "clock at last event" 3. (Engine.now engine)

let test_engine_same_time_fifo () =
  let engine = Engine.create () in
  let log = ref [] in
  for i = 0 to 4 do
    ignore (Engine.schedule_at engine ~time:1. (fun () -> log := i :: !log))
  done;
  Engine.run engine;
  Alcotest.(check (list int)) "fifo at equal times" [ 0; 1; 2; 3; 4 ] (List.rev !log)

let test_engine_rejects_past () =
  let engine = Engine.create () in
  ignore (Engine.schedule_at engine ~time:5. (fun () -> ()));
  Engine.run engine;
  Alcotest.(check bool) "clock advanced" true (Float.equal (Engine.now engine) 5.);
  let raised =
    with_sanitizer_disarmed (fun () ->
        try
          ignore (Engine.schedule_at engine ~time:1. (fun () -> ()));
          false
        with Invalid_argument _ -> true)
  in
  Alcotest.(check bool) "past rejected" true raised

let test_engine_schedule_after () =
  let engine = Engine.create () in
  let fired_at = ref (-1.) in
  ignore
    (Engine.schedule_after engine ~delay:2. (fun () ->
         fired_at := Engine.now engine;
         ignore (Engine.schedule_after engine ~delay:3. (fun () -> ()))));
  Engine.run engine;
  Alcotest.(check (float 0.)) "fired at 2" 2. !fired_at;
  Alcotest.(check (float 0.)) "chained until 5" 5. (Engine.now engine)

let test_engine_cancellation () =
  let engine = Engine.create () in
  let fired = ref false in
  let handle = Engine.schedule_at engine ~time:1. (fun () -> fired := true) in
  Alcotest.(check bool) "not yet cancelled" false (Engine.cancelled engine handle);
  Engine.cancel engine handle;
  Alcotest.(check bool) "cancelled" true (Engine.cancelled engine handle);
  Engine.run engine;
  Alcotest.(check bool) "did not fire" false !fired

let test_engine_cancel_twice_is_noop () =
  let engine = Engine.create () in
  let handle = Engine.schedule_at engine ~time:1. (fun () -> ()) in
  Engine.cancel engine handle;
  Engine.cancel engine handle;
  Engine.run engine

(* A fired event's cell is recycled for the next schedule; the handle of
   the fired event must read as stale and cancelling it must not touch
   the new occupant of the cell. *)
let test_engine_cell_recycling_generation_safety () =
  let engine = Engine.create () in
  let first = ref false in
  let second = ref false in
  let h1 = Engine.schedule_at engine ~time:1. (fun () -> first := true) in
  Engine.run engine;
  Alcotest.(check bool) "first fired" true !first;
  Alcotest.(check bool) "fired handle is stale" true (Engine.cancelled engine h1);
  (* The slab hands low indices out first, so h2 reuses h1's cell. *)
  let h2 = Engine.schedule_at engine ~time:2. (fun () -> second := true) in
  Engine.cancel engine h1;
  Alcotest.(check bool) "new occupant unaffected" false (Engine.cancelled engine h2);
  Engine.run engine;
  Alcotest.(check bool) "second fired" true !second

(* Cancelling recycles the cell immediately; the stale entry still in
   the heap must be skipped when its time comes, without disturbing the
   event that reused the cell. *)
let test_engine_cancel_then_recycle_stale_heap_entry () =
  let engine = Engine.create () in
  let cancelled_fired = ref false in
  let reused_fired = ref false in
  let h1 = Engine.schedule_at engine ~time:1. (fun () -> cancelled_fired := true) in
  Engine.cancel engine h1;
  ignore (Engine.schedule_at engine ~time:1. (fun () -> reused_fired := true));
  Engine.run engine;
  Alcotest.(check bool) "cancelled event silent" false !cancelled_fired;
  Alcotest.(check bool) "recycled cell's event fired" true !reused_fired;
  Alcotest.(check (float 0.)) "clock advanced" 1. (Engine.now engine)

(* The cell is consumed before the action runs, so a handler cancelling
   its own handle is a generation-checked no-op. *)
let test_engine_cancel_self_inside_handler () =
  let engine = Engine.create () in
  let fired = ref false in
  let self = ref None in
  let h =
    Engine.schedule_at engine ~time:1. (fun () ->
        (match !self with Some h -> Engine.cancel engine h | None -> ());
        fired := true)
  in
  self := Some h;
  Engine.run engine;
  Alcotest.(check bool) "fired despite self-cancel" true !fired

let test_engine_cancel_other_inside_handler () =
  let engine = Engine.create () in
  let victim_fired = ref false in
  let h2 = Engine.schedule_at engine ~time:2. (fun () -> victim_fired := true) in
  ignore (Engine.schedule_at engine ~time:1. (fun () -> Engine.cancel engine h2));
  Engine.run engine;
  Alcotest.(check bool) "victim cancelled from handler" false !victim_fired

(* Ports: registered once, scheduled by reference, including a port that
   reschedules itself — the link transmit loop's shape. *)
let test_engine_ports () =
  let engine = Engine.create () in
  let count = ref 0 in
  let p = ref (Engine.port engine (fun () -> ())) in
  p :=
    Engine.port engine (fun () ->
        incr count;
        if !count < 5 then Engine.schedule_port_after engine ~delay:1. !p);
  Engine.schedule_port_at engine ~time:1. !p;
  Engine.run engine;
  Alcotest.(check int) "self-rescheduling port fired 5 times" 5 !count;
  Alcotest.(check (float 0.)) "clock at last firing" 5. (Engine.now engine)

(* Heavy churn through the slab: a long self-rescheduling chain plus
   cancelled bystanders must leave the engine fully drained. *)
let test_engine_slab_churn () =
  let engine = Engine.create () in
  let count = ref 0 in
  let rec chain () =
    incr count;
    if !count < 1000 then begin
      ignore (Engine.schedule_after engine ~delay:1. chain);
      let doomed = Engine.schedule_after engine ~delay:0.5 (fun () -> Alcotest.fail "doomed") in
      Engine.cancel engine doomed
    end
  in
  ignore (Engine.schedule_after engine ~delay:1. chain);
  Engine.run engine;
  Alcotest.(check int) "chain completed" 1000 !count;
  Alcotest.(check int) "queue drained" 0 (Engine.pending engine)

let test_engine_until_horizon () =
  let engine = Engine.create () in
  let fired = ref [] in
  List.iter
    (fun t -> ignore (Engine.schedule_at engine ~time:t (fun () -> fired := t :: !fired)))
    [ 1.; 2.; 3.; 10. ];
  Engine.run ~until:5. engine;
  Alcotest.(check (list (float 0.))) "events before horizon" [ 1.; 2.; 3. ] (List.rev !fired);
  Alcotest.(check (float 0.)) "clock at horizon" 5. (Engine.now engine);
  Alcotest.(check int) "pending event survives" 1 (Engine.pending engine);
  Engine.run engine;
  Alcotest.(check (float 0.)) "resumes past horizon" 10. (Engine.now engine)

let test_engine_stop () =
  let engine = Engine.create () in
  let count = ref 0 in
  for _ = 1 to 10 do
    ignore
      (Engine.schedule_after engine ~delay:1. (fun () ->
           incr count;
           if !count = 3 then Engine.stop engine))
  done;
  Engine.run engine;
  Alcotest.(check int) "stopped after 3" 3 !count;
  Engine.run engine;
  Alcotest.(check int) "resumable" 10 !count

let test_engine_step () =
  let engine = Engine.create () in
  ignore (Engine.schedule_at engine ~time:1. (fun () -> ()));
  Alcotest.(check bool) "step true" true (Engine.step engine);
  Alcotest.(check bool) "step false when empty" false (Engine.step engine)

let test_engine_negative_delay_rejected () =
  let engine = Engine.create () in
  let raised =
    with_sanitizer_disarmed (fun () ->
        try
          ignore (Engine.schedule_after engine ~delay:(-1.) (fun () -> ()));
          false
        with Invalid_argument _ -> true)
  in
  Alcotest.(check bool) "negative delay rejected" true raised

let prop_engine_fires_all_in_order =
  QCheck.Test.make ~name:"engine fires every event in time order" ~count:200
    QCheck.(list_of_size Gen.(int_range 0 50) (float_bound_exclusive 100.))
    (fun times ->
      let engine = Engine.create () in
      let fired = ref [] in
      List.iter
        (fun t -> ignore (Engine.schedule_at engine ~time:t (fun () -> fired := t :: !fired)))
        times;
      Engine.run engine;
      let fired = List.rev !fired in
      List.length fired = List.length times
      && fired = List.sort Float.compare times)

let suite =
  [
    ("heap empty", `Quick, test_heap_empty);
    ("heap orders by priority", `Quick, test_heap_orders_by_priority);
    ("heap fifo ties", `Quick, test_heap_fifo_ties);
    ("heap grows", `Quick, test_heap_grows);
    ("heap nan total order", `Quick, test_heap_nan_total_order);
    QCheck_alcotest.to_alcotest prop_heap_sorts;
    QCheck_alcotest.to_alcotest prop_heap_matches_reference;
    ("ring fifo", `Quick, test_ring_fifo);
    ("ring wraparound", `Quick, test_ring_wraparound);
    ("ring peek/fold/clear", `Quick, test_ring_peek_fold_clear);
    ("ring empty pop raises", `Quick, test_ring_empty_pop_raises);
    ("engine time order", `Quick, test_engine_runs_in_time_order);
    ("engine same-time fifo", `Quick, test_engine_same_time_fifo);
    ("engine rejects past", `Quick, test_engine_rejects_past);
    ("engine schedule_after", `Quick, test_engine_schedule_after);
    ("engine cancellation", `Quick, test_engine_cancellation);
    ("engine cancel twice", `Quick, test_engine_cancel_twice_is_noop);
    ("engine cell recycling", `Quick, test_engine_cell_recycling_generation_safety);
    ("engine cancel then recycle", `Quick, test_engine_cancel_then_recycle_stale_heap_entry);
    ("engine cancel self in handler", `Quick, test_engine_cancel_self_inside_handler);
    ("engine cancel other in handler", `Quick, test_engine_cancel_other_inside_handler);
    ("engine ports", `Quick, test_engine_ports);
    ("engine slab churn", `Quick, test_engine_slab_churn);
    ("engine run until", `Quick, test_engine_until_horizon);
    ("engine stop", `Quick, test_engine_stop);
    ("engine step", `Quick, test_engine_step);
    ("engine negative delay", `Quick, test_engine_negative_delay_rejected);
    QCheck_alcotest.to_alcotest prop_engine_fires_all_in_order;
  ]
