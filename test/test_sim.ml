(* Tests for phi_sim: the binary heap and the discrete-event engine. *)

module Heap = Phi_sim.Heap
module Engine = Phi_sim.Engine
module Invariant = Phi_sim.Invariant

(* Strict-mode raise behavior only holds while the sanitizer is
   disarmed; with PHI_SANITIZE=1 anomalies are recorded instead. *)
let with_sanitizer_disarmed f =
  let prev = Invariant.enabled () in
  Invariant.set_enabled false;
  Fun.protect ~finally:(fun () -> Invariant.set_enabled prev) f

(* {2 Heap} *)

let test_heap_empty () =
  let h : int Heap.t = Heap.create () in
  Alcotest.(check bool) "is_empty" true (Heap.is_empty h);
  Alcotest.(check int) "size" 0 (Heap.size h);
  Alcotest.(check bool) "pop none" true (Heap.pop h = None);
  Alcotest.(check bool) "peek none" true (Heap.peek h = None)

let test_heap_orders_by_priority () =
  let h = Heap.create () in
  List.iteri (fun i p -> Heap.push h ~priority:p ~seq:i p) [ 3.; 1.; 2.; 0.5; 5. ];
  let order = ref [] in
  let rec drain () =
    match Heap.pop h with
    | Some (_, _, v) ->
      order := v :: !order;
      drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list (float 0.))) "ascending" [ 0.5; 1.; 2.; 3.; 5. ] (List.rev !order)

let test_heap_fifo_ties () =
  let h = Heap.create () in
  for i = 0 to 9 do
    Heap.push h ~priority:1. ~seq:i i
  done;
  for i = 0 to 9 do
    match Heap.pop h with
    | Some (_, seq, v) ->
      Alcotest.(check int) "fifo order" i seq;
      Alcotest.(check int) "payload" i v
    | None -> Alcotest.fail "heap exhausted early"
  done

let test_heap_grows () =
  let h = Heap.create () in
  for i = 999 downto 0 do
    Heap.push h ~priority:(float_of_int i) ~seq:i i
  done;
  Alcotest.(check int) "size" 1000 (Heap.size h);
  (match Heap.peek h with
  | Some (p, _, _) -> Alcotest.(check (float 0.)) "min on top" 0. p
  | None -> Alcotest.fail "empty");
  Heap.clear h;
  Alcotest.(check bool) "cleared" true (Heap.is_empty h)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap pops in sorted order" ~count:300
    QCheck.(list (float_bound_exclusive 1000.))
    (fun priorities ->
      let h = Heap.create () in
      List.iteri (fun i p -> Heap.push h ~priority:p ~seq:i ()) priorities;
      let rec drain last =
        match Heap.pop h with
        | None -> true
        | Some (p, _, ()) -> if p < last then false else drain p
      in
      drain neg_infinity)

(* {2 Engine} *)

let test_engine_runs_in_time_order () =
  let engine = Engine.create () in
  let log = ref [] in
  let note tag () = log := tag :: !log in
  ignore (Engine.schedule_at engine ~time:3. (note "c"));
  ignore (Engine.schedule_at engine ~time:1. (note "a"));
  ignore (Engine.schedule_at engine ~time:2. (note "b"));
  Engine.run engine;
  Alcotest.(check (list string)) "order" [ "a"; "b"; "c" ] (List.rev !log);
  Alcotest.(check (float 0.)) "clock at last event" 3. (Engine.now engine)

let test_engine_same_time_fifo () =
  let engine = Engine.create () in
  let log = ref [] in
  for i = 0 to 4 do
    ignore (Engine.schedule_at engine ~time:1. (fun () -> log := i :: !log))
  done;
  Engine.run engine;
  Alcotest.(check (list int)) "fifo at equal times" [ 0; 1; 2; 3; 4 ] (List.rev !log)

let test_engine_rejects_past () =
  let engine = Engine.create () in
  ignore (Engine.schedule_at engine ~time:5. (fun () -> ()));
  Engine.run engine;
  Alcotest.(check bool) "clock advanced" true (Float.equal (Engine.now engine) 5.);
  let raised =
    with_sanitizer_disarmed (fun () ->
        try
          ignore (Engine.schedule_at engine ~time:1. (fun () -> ()));
          false
        with Invalid_argument _ -> true)
  in
  Alcotest.(check bool) "past rejected" true raised

let test_engine_schedule_after () =
  let engine = Engine.create () in
  let fired_at = ref (-1.) in
  ignore
    (Engine.schedule_after engine ~delay:2. (fun () ->
         fired_at := Engine.now engine;
         ignore (Engine.schedule_after engine ~delay:3. (fun () -> ()))));
  Engine.run engine;
  Alcotest.(check (float 0.)) "fired at 2" 2. !fired_at;
  Alcotest.(check (float 0.)) "chained until 5" 5. (Engine.now engine)

let test_engine_cancellation () =
  let engine = Engine.create () in
  let fired = ref false in
  let handle = Engine.schedule_at engine ~time:1. (fun () -> fired := true) in
  Alcotest.(check bool) "not yet cancelled" false (Engine.cancelled handle);
  Engine.cancel handle;
  Alcotest.(check bool) "cancelled" true (Engine.cancelled handle);
  Engine.run engine;
  Alcotest.(check bool) "did not fire" false !fired

let test_engine_cancel_twice_is_noop () =
  let engine = Engine.create () in
  let handle = Engine.schedule_at engine ~time:1. (fun () -> ()) in
  Engine.cancel handle;
  Engine.cancel handle;
  Engine.run engine

let test_engine_until_horizon () =
  let engine = Engine.create () in
  let fired = ref [] in
  List.iter
    (fun t -> ignore (Engine.schedule_at engine ~time:t (fun () -> fired := t :: !fired)))
    [ 1.; 2.; 3.; 10. ];
  Engine.run ~until:5. engine;
  Alcotest.(check (list (float 0.))) "events before horizon" [ 1.; 2.; 3. ] (List.rev !fired);
  Alcotest.(check (float 0.)) "clock at horizon" 5. (Engine.now engine);
  Alcotest.(check int) "pending event survives" 1 (Engine.pending engine);
  Engine.run engine;
  Alcotest.(check (float 0.)) "resumes past horizon" 10. (Engine.now engine)

let test_engine_stop () =
  let engine = Engine.create () in
  let count = ref 0 in
  for _ = 1 to 10 do
    ignore
      (Engine.schedule_after engine ~delay:1. (fun () ->
           incr count;
           if !count = 3 then Engine.stop engine))
  done;
  Engine.run engine;
  Alcotest.(check int) "stopped after 3" 3 !count;
  Engine.run engine;
  Alcotest.(check int) "resumable" 10 !count

let test_engine_step () =
  let engine = Engine.create () in
  ignore (Engine.schedule_at engine ~time:1. (fun () -> ()));
  Alcotest.(check bool) "step true" true (Engine.step engine);
  Alcotest.(check bool) "step false when empty" false (Engine.step engine)

let test_engine_negative_delay_rejected () =
  let engine = Engine.create () in
  let raised =
    with_sanitizer_disarmed (fun () ->
        try
          ignore (Engine.schedule_after engine ~delay:(-1.) (fun () -> ()));
          false
        with Invalid_argument _ -> true)
  in
  Alcotest.(check bool) "negative delay rejected" true raised

let prop_engine_fires_all_in_order =
  QCheck.Test.make ~name:"engine fires every event in time order" ~count:200
    QCheck.(list_of_size Gen.(int_range 0 50) (float_bound_exclusive 100.))
    (fun times ->
      let engine = Engine.create () in
      let fired = ref [] in
      List.iter
        (fun t -> ignore (Engine.schedule_at engine ~time:t (fun () -> fired := t :: !fired)))
        times;
      Engine.run engine;
      let fired = List.rev !fired in
      List.length fired = List.length times
      && fired = List.sort Float.compare times)

let suite =
  [
    ("heap empty", `Quick, test_heap_empty);
    ("heap orders by priority", `Quick, test_heap_orders_by_priority);
    ("heap fifo ties", `Quick, test_heap_fifo_ties);
    ("heap grows", `Quick, test_heap_grows);
    QCheck_alcotest.to_alcotest prop_heap_sorts;
    ("engine time order", `Quick, test_engine_runs_in_time_order);
    ("engine same-time fifo", `Quick, test_engine_same_time_fifo);
    ("engine rejects past", `Quick, test_engine_rejects_past);
    ("engine schedule_after", `Quick, test_engine_schedule_after);
    ("engine cancellation", `Quick, test_engine_cancellation);
    ("engine cancel twice", `Quick, test_engine_cancel_twice_is_noop);
    ("engine run until", `Quick, test_engine_until_horizon);
    ("engine stop", `Quick, test_engine_stop);
    ("engine step", `Quick, test_engine_step);
    ("engine negative delay", `Quick, test_engine_negative_delay_rejected);
    QCheck_alcotest.to_alcotest prop_engine_fires_all_in_order;
  ]
