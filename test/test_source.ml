(* Tests for the on/off workload driver (Phi_tcp.Source): sequential
   connections, the cc-factory and report hooks, stop/abort semantics —
   including Remy controllers riding the same driver through the
   cc-factory. *)

module Engine = Phi_sim.Engine
module Topology = Phi_net.Topology
module Prng = Phi_util.Prng
open Phi_tcp

type fixture = {
  engine : Engine.t;
  dumbbell : Topology.dumbbell;
  flows : Flow.allocator;
}

let fixture () =
  let engine = Engine.create () in
  let dumbbell = Topology.dumbbell engine { Topology.paper_spec with Topology.n = 1 } in
  { engine; dumbbell; flows = Flow.allocator () }

let make_source ?(mean_on_bytes = 50e3) ?(mean_off_s = 0.2) ?(on_conn_end = fun _ -> ())
    ?(cc_factory = fun () -> Cubic.make Cubic.default_params) f =
  Source.create f.engine ~rng:(Prng.create ~seed:3) ~flows:f.flows
    ~src_node:f.dumbbell.Topology.senders.(0)
    ~dst_node:f.dumbbell.Topology.receivers.(0)
    ~index:0 ~cc_factory ~on_conn_end
    { Source.mean_on_bytes; mean_off_s }

let test_source_runs_sequential_connections () =
  let f = fixture () in
  let source = make_source f in
  Source.start source;
  Engine.run ~until:30. f.engine;
  Source.abort_current source;
  let records = Source.records source in
  Alcotest.(check bool) "many connections" true (List.length records > 10);
  (* Connections are sequential: sorted by start, and each starts after
     the previous finished. *)
  let rec check_sequential = function
    | (a : Flow.conn_stats) :: (b : Flow.conn_stats) :: rest ->
      Alcotest.(check bool) "no overlap" true (b.Flow.started_at >= a.Flow.finished_at -. 1e-9);
      check_sequential (b :: rest)
    | _ -> ()
  in
  check_sequential records;
  (* Every record has a distinct flow id. *)
  let ids = List.map (fun (r : Flow.conn_stats) -> r.Flow.flow) records in
  Alcotest.(check int) "distinct flows" (List.length ids)
    (List.length (List.sort_uniq Int.compare ids))

let test_source_cc_factory_called_per_connection () =
  let f = fixture () in
  let calls = ref 0 in
  let source =
    make_source
      ~cc_factory:(fun () ->
        incr calls;
        Cubic.make Cubic.default_params)
      f
  in
  Source.start source;
  Engine.run ~until:20. f.engine;
  Source.abort_current source;
  (* One factory call per launched connection (completed + in-flight). *)
  Alcotest.(check bool) "factory called per connection" true
    (!calls >= Source.connections_completed source
    && !calls <= Source.connections_completed source + 1)

let test_source_on_conn_end_matches_records () =
  let f = fixture () in
  let reported = ref 0 in
  let source = make_source ~on_conn_end:(fun _ -> incr reported) f in
  Source.start source;
  Engine.run ~until:20. f.engine;
  Source.stop source;
  Engine.run ~until:25. f.engine;
  Alcotest.(check int) "hook fired per record" (Source.connections_completed source) !reported

let test_source_stop_prevents_new_connections () =
  let f = fixture () in
  let source = make_source f in
  Source.start source;
  Engine.run ~until:10. f.engine;
  Source.stop source;
  Engine.run ~until:12. f.engine;  (* let the in-flight connection finish *)
  let count = Source.connections_completed source in
  Engine.run ~until:40. f.engine;
  Alcotest.(check int) "no further connections" count (Source.connections_completed source)

let test_source_validation () =
  let f = fixture () in
  let raised g = try g (); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "bad on size" true
    (raised (fun () -> ignore (make_source ~mean_on_bytes:0. f)));
  Alcotest.(check bool) "bad off time" true
    (raised (fun () -> ignore (make_source ~mean_off_s:(-1.) f)))

(* {2 Remy controllers through the shared source} *)

let make_remy_source ?(util = `None) f =
  let dims = match util with `None -> 3 | _ -> 4 in
  let table =
    Phi_remy.Compiled_table.compile
      (Phi_remy.Rule_table.create ~dims Phi_remy.Whisker.default_action)
  in
  Source.create f.engine ~rng:(Prng.create ~seed:4) ~flows:f.flows
    ~src_node:f.dumbbell.Topology.senders.(0)
    ~dst_node:f.dumbbell.Topology.receivers.(0)
    ~index:0
    ~cc_factory:(fun () -> Phi_remy.Remy_cc.make ~table ~util ())
    { Source.mean_on_bytes = 50e3; mean_off_s = 0.2 }

let test_remy_source_runs () =
  let f = fixture () in
  let source = make_remy_source f in
  Source.start source;
  Engine.run ~until:30. f.engine;
  Source.abort_current source;
  Alcotest.(check bool) "connections completed" true
    (Source.connections_completed source > 5);
  List.iter
    (fun (r : Flow.conn_stats) ->
      Alcotest.(check bool) "bytes delivered" true (r.Flow.bytes > 0))
    (Source.records source)

let test_remy_source_practical_util_sampled_per_connection () =
  (* `At_start runs once per Remy_cc.make, i.e. once per connection the
     factory launches — the Remy-Phi-practical protocol. *)
  let f = fixture () in
  let samples = ref 0 in
  let util = `At_start (fun () -> incr samples; 0.5) in
  let source = make_remy_source ~util f in
  Source.start source;
  Engine.run ~until:20. f.engine;
  Source.abort_current source;
  let completed = Source.connections_completed source in
  Alcotest.(check bool) "one sample per connection" true
    (!samples >= completed && !samples <= completed + 1)

let suite =
  [
    ("source sequential connections", `Quick, test_source_runs_sequential_connections);
    ("source cc factory per connection", `Quick, test_source_cc_factory_called_per_connection);
    ("source report hook", `Quick, test_source_on_conn_end_matches_records);
    ("source stop", `Quick, test_source_stop_prevents_new_connections);
    ("source validation", `Quick, test_source_validation);
    ("remy source runs", `Quick, test_remy_source_runs);
    ("remy source practical util", `Quick, test_remy_source_practical_util_sampled_per_connection);
  ]
