(* The swarm benchmark harness, on a reduced fleet: completion,
   structural sanity of the metrics, and the jobs-invariance of the
   deterministic fingerprint. *)

module Swarm = Phi_experiments.Swarm

let small =
  { Swarm.default_config with Swarm.n_flows = 20_000; Swarm.cells = 4; Swarm.shards_per_cell = 4 }

let test_swarm_completes () =
  let r = Swarm.run ~jobs:1 ~config:small () in
  Alcotest.(check int) "flows" 20_000 r.Swarm.flows;
  Alcotest.(check int) "one lookup per flow" 20_000 r.Swarm.lookups;
  Alcotest.(check int) "one report per flow" 20_000 r.Swarm.reports;
  Alcotest.(check bool) "jain in (0, 1]" true
    (r.Swarm.jain_index > 0. && r.Swarm.jain_index <= 1.);
  Alcotest.(check bool) "hash spreads load" true (r.Swarm.jain_index > 0.2);
  Alcotest.(check bool) "paths resident" true (r.Swarm.resident_paths > 0);
  Alcotest.(check bool) "epochs flushed" true (r.Swarm.flushes > 0);
  Alcotest.(check bool) "rates positive" true
    (r.Swarm.lookups_per_s > 0. && r.Swarm.reports_per_s > 0.);
  Alcotest.(check bool) "p99 at least p50" true (r.Swarm.p99_lookup_s >= r.Swarm.p50_lookup_s);
  Alcotest.(check bool) "latencies non-negative" true (r.Swarm.p50_lookup_s >= 0.)

(* The fingerprint (counts, response checksum, residency, balance) must
   not depend on the domain fan-out; only the timing half may. *)
let test_swarm_fingerprint_jobs_invariant () =
  let serial = Swarm.run ~jobs:1 ~config:small () in
  let parallel = Swarm.run ~jobs:4 ~config:small () in
  Alcotest.(check string) "serial and parallel fingerprints identical" serial.Swarm.fingerprint
    parallel.Swarm.fingerprint

let test_swarm_seed_changes_fingerprint () =
  let a = Swarm.run ~jobs:2 ~config:small () in
  let b = Swarm.run ~jobs:2 ~config:{ small with Swarm.seed = small.Swarm.seed + 1 } () in
  Alcotest.(check bool) "different workload, different fingerprint" true
    (not (String.equal a.Swarm.fingerprint b.Swarm.fingerprint))

let suite =
  [
    Alcotest.test_case "swarm completes and reports sane metrics" `Quick test_swarm_completes;
    Alcotest.test_case "fingerprint is jobs-invariant" `Quick
      test_swarm_fingerprint_jobs_invariant;
    Alcotest.test_case "fingerprint tracks the workload" `Quick
      test_swarm_seed_changes_fingerprint;
  ]
