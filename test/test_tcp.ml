(* Tests for phi_tcp: RTO estimation, congestion controllers, the
   receiver, and the SACK sender driven over real simulated links. *)

module Engine = Phi_sim.Engine
module Packet = Phi_net.Packet
module Link = Phi_net.Link
module Node = Phi_net.Node
module Topology = Phi_net.Topology
module Prng = Phi_util.Prng
open Phi_tcp

(* {2 Rto} *)

let test_rto_initial () =
  let rto = Rto.create () in
  Alcotest.(check (float 0.)) "1 s before samples" 1. (Rto.current rto);
  Alcotest.(check (float 0.)) "no srtt -> default" 0.42 (Rto.srtt rto ~default:0.42)

let test_rto_first_sample () =
  let rto = Rto.create () in
  Rto.observe rto ~rtt:0.1;
  (* srtt = 0.1, rttvar = 0.05 -> rto = 0.3. *)
  Alcotest.(check (float 1e-9)) "srtt + 4 var" 0.3 (Rto.current rto);
  Alcotest.(check (float 1e-9)) "srtt" 0.1 (Rto.srtt rto ~default:0.)

let test_rto_converges () =
  let rto = Rto.create () in
  for _ = 1 to 100 do
    Rto.observe rto ~rtt:0.2
  done;
  (* Constant samples: rttvar decays towards 0, rto towards max(srtt, min). *)
  Alcotest.(check bool) "close to srtt" true (Rto.current rto < 0.25)

let test_rto_backoff () =
  let rto = Rto.create () in
  Rto.observe rto ~rtt:0.1;
  let base = Rto.current rto in
  Rto.backoff rto;
  Alcotest.(check (float 1e-9)) "doubled" (base *. 2.) (Rto.current rto);
  Rto.backoff rto;
  Alcotest.(check (float 1e-9)) "doubled again" (base *. 4.) (Rto.current rto);
  Rto.observe rto ~rtt:0.1;
  (* A fresh sample clears the backoff (and shrinks rttvar further). *)
  Alcotest.(check bool) "sample clears backoff" true (Rto.current rto <= base)

let test_rto_min_max () =
  let rto = Rto.create ~min_rto:0.5 ~max_rto:2. () in
  Rto.observe rto ~rtt:0.001;
  Alcotest.(check (float 1e-9)) "floored" 0.5 (Rto.current rto);
  for _ = 1 to 10 do
    Rto.backoff rto
  done;
  Alcotest.(check (float 1e-9)) "capped" 2. (Rto.current rto)

(* {2 Congestion controllers} *)

let test_reno_slow_start_then_ca () =
  let cc = Reno.make ~initial_cwnd:2. ~initial_ssthresh:4. () in
  Alcotest.(check bool) "starts in slow start" true (Cc.in_slow_start cc);
  cc.Cc.on_ack cc ~now:0. ~rtt:0.1 ~sent_at:0. ~newly_acked:1;
  Alcotest.(check (float 1e-9)) "slow start +1" 3. cc.Cc.cwnd;
  cc.Cc.on_ack cc ~now:0. ~rtt:0.1 ~sent_at:0. ~newly_acked:5;
  Alcotest.(check (float 1e-9)) "capped at ssthresh" 4. cc.Cc.cwnd;
  let before = cc.Cc.cwnd in
  cc.Cc.on_ack cc ~now:0. ~rtt:0.1 ~sent_at:0. ~newly_acked:1;
  Alcotest.(check (float 1e-9)) "CA +1/cwnd" (before +. (1. /. before)) cc.Cc.cwnd

let test_reno_loss_halves () =
  let cc = Reno.make ~initial_cwnd:10. ~initial_ssthresh:5. () in
  cc.Cc.on_loss cc ~now:0.;
  Alcotest.(check (float 1e-9)) "halved" 5. cc.Cc.cwnd;
  Alcotest.(check (float 1e-9)) "ssthresh follows" 5. cc.Cc.ssthresh

let test_reno_timeout_resets () =
  let cc = Reno.make ~initial_cwnd:10. ~initial_ssthresh:5. () in
  cc.Cc.on_timeout cc ~now:0.;
  Alcotest.(check (float 1e-9)) "cwnd 1" 1. cc.Cc.cwnd;
  Alcotest.(check (float 1e-9)) "ssthresh half" 5. cc.Cc.ssthresh

let test_reno_raw_halving () =
  (* The controller reports its raw multiplicative decrease; the
     min-cwnd floor is enforced once, by the sender, after every
     controller hook (see the buggy-controller property below). *)
  let cc = Reno.make ~initial_cwnd:2. ~initial_ssthresh:2. () in
  cc.Cc.on_loss cc ~now:0.;
  Alcotest.(check (float 1e-9)) "raw halving below min_cwnd" 1. cc.Cc.cwnd;
  Alcotest.(check bool) "min_cwnd is the sender's floor" true (cc.Cc.cwnd < Cc.min_cwnd)

let test_weighted_reno_increase () =
  let w = 4. in
  let cc = Reno.make_weighted ~weight:w ~initial_cwnd:10. ~initial_ssthresh:5. () in
  let before = cc.Cc.cwnd in
  cc.Cc.on_ack cc ~now:0. ~rtt:Float.nan ~sent_at:0. ~newly_acked:1;
  Alcotest.(check (float 1e-9)) "w/cwnd per ack" (before +. (w /. before)) cc.Cc.cwnd

let test_weighted_reno_gentle_decrease () =
  let cc = Reno.make_weighted ~weight:4. ~initial_cwnd:16. ~initial_ssthresh:8. () in
  cc.Cc.on_loss cc ~now:0.;
  (* factor 1 - 1/(2 * 4) = 0.875 *)
  Alcotest.(check (float 1e-9)) "MulTCP decrease" 14. cc.Cc.cwnd

let test_weighted_reno_rejects_bad_weight () =
  let raised = try ignore (Reno.make_weighted ~weight:0. ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "weight 0 rejected" true raised

let test_cubic_defaults_match_table1 () =
  let p = Cubic.default_params in
  Alcotest.(check (float 0.)) "windowInit_" 2. p.Cubic.initial_cwnd;
  Alcotest.(check (float 0.)) "initial_ssthresh 65K" 65536. p.Cubic.initial_ssthresh;
  Alcotest.(check (float 0.)) "beta" 0.2 p.Cubic.beta

let test_cubic_slow_start () =
  let cc = Cubic.make (Cubic.with_knobs ~initial_cwnd:2. ~initial_ssthresh:8. Cubic.default_params) in
  cc.Cc.on_ack cc ~now:0. ~rtt:0.1 ~sent_at:0. ~newly_acked:2;
  Alcotest.(check (float 1e-9)) "doubling" 4. cc.Cc.cwnd

let test_cubic_beta_decrease () =
  let cc = Cubic.make (Cubic.with_knobs ~beta:0.3 ~initial_ssthresh:8. Cubic.default_params) in
  cc.Cc.cwnd <- 100.;
  cc.Cc.on_loss cc ~now:1.;
  Alcotest.(check (float 1e-6)) "(1-beta) cwnd" 70. cc.Cc.cwnd;
  Alcotest.(check (float 1e-6)) "ssthresh tracks" 70. cc.Cc.ssthresh

let test_cubic_concave_convex_growth () =
  (* After a loss at w_max=100, growth should approach w_max slowly then
     accelerate past it (cubic shape). *)
  let cc = Cubic.make (Cubic.with_knobs ~initial_ssthresh:2. Cubic.default_params) in
  cc.Cc.cwnd <- 100.;
  cc.Cc.on_loss cc ~now:0.;
  let w_after_loss = cc.Cc.cwnd in
  (* Feed steady acks at 100 ms RTT for 2 simulated seconds. *)
  let now = ref 0. in
  for _ = 1 to 20 do
    now := !now +. 0.1;
    cc.Cc.on_ack cc ~now:!now ~rtt:0.1 ~sent_at:(!now -. 0.1) ~newly_acked:10
  done;
  let w_2s = cc.Cc.cwnd in
  Alcotest.(check bool) "recovering towards w_max" true (w_2s > w_after_loss);
  for _ = 1 to 200 do
    now := !now +. 0.1;
    cc.Cc.on_ack cc ~now:!now ~rtt:0.1 ~sent_at:(!now -. 0.1) ~newly_acked:10
  done;
  Alcotest.(check bool) "eventually exceeds w_max" true (cc.Cc.cwnd > 100.)

let test_cubic_timeout () =
  let cc = Cubic.make Cubic.default_params in
  cc.Cc.cwnd <- 50.;
  cc.Cc.on_timeout cc ~now:1.;
  Alcotest.(check (float 1e-9)) "cwnd 1" 1. cc.Cc.cwnd;
  Alcotest.(check (float 1e-6)) "ssthresh = (1-beta) * 50" 40. cc.Cc.ssthresh

let test_cubic_rejects_bad_beta () =
  let raised =
    try ignore (Cubic.make (Cubic.with_knobs ~beta:1. Cubic.default_params)); false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "beta 1 rejected" true raised

let test_cubic_params_to_string () =
  Alcotest.(check string) "render" "65536/2/0.2" (Cubic.params_to_string Cubic.default_params)

(* {2 Vegas} *)

let feed_vegas cc ~rtt ~epochs =
  (* One "epoch" = enough acks at a fixed RTT to pass the adjustment
     boundary. *)
  let now = ref 0.1 in
  for _ = 1 to epochs do
    now := !now +. rtt;
    cc.Cc.on_ack cc ~now:!now ~rtt:rtt ~sent_at:(!now -. rtt) ~newly_acked:1
  done

let test_vegas_grows_when_queue_empty () =
  let cc = Vegas.make ~initial_cwnd:10. ~initial_ssthresh:5. () in
  (* Constant RTT = base RTT: diff = 0 < alpha, so +1 per epoch. *)
  let before = cc.Cc.cwnd in
  feed_vegas cc ~rtt:0.1 ~epochs:10;
  Alcotest.(check bool) "grew additively" true
    (cc.Cc.cwnd > before && cc.Cc.cwnd <= before +. 10.)

let test_vegas_shrinks_when_queue_builds () =
  let cc = Vegas.make ~initial_cwnd:20. ~initial_ssthresh:5. () in
  (* Seed base_rtt low, then keep RTT 2x base: diff = cwnd/2 > beta. *)
  cc.Cc.on_ack cc ~now:0.05 ~rtt:0.1 ~sent_at:0. ~newly_acked:1;
  let before = cc.Cc.cwnd in
  feed_vegas cc ~rtt:0.2 ~epochs:10;
  Alcotest.(check bool) "shrank" true (cc.Cc.cwnd < before)

let test_vegas_loss_decrease_gentler_than_timeout () =
  let cc = Vegas.make ~initial_cwnd:40. ~initial_ssthresh:5. () in
  cc.Cc.on_loss cc ~now:0.;
  Alcotest.(check (float 1e-9)) "3/4 on loss" 30. cc.Cc.cwnd;
  cc.Cc.on_timeout cc ~now:0.;
  Alcotest.(check (float 1e-9)) "1 on timeout" 1. cc.Cc.cwnd

let test_vegas_validation () =
  let raised = try ignore (Vegas.make ~alpha:5. ~beta:2. ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "alpha > beta rejected" true raised

let test_vegas_keeps_queue_short_end_to_end () =
  (* A single Vegas flow on the paper dumbbell should hold much less
     queue than default Cubic does. *)
  let run cc =
    let engine = Engine.create () in
    let dumbbell = Topology.dumbbell engine { Topology.paper_spec with Topology.n = 1 } in
    let _recv = Receiver.create engine ~node:dumbbell.Topology.receivers.(0) ~flow:0 ~peer:0 in
    let sender =
      Sender.create engine
        ~node:dumbbell.Topology.senders.(0)
        ~flow:0
        ~dst:(Topology.receiver_id dumbbell 0)
        ~cc ~total_segments:Sender.persistent_total ()
    in
    Sender.start sender;
    Engine.run ~until:30. engine;
    let bneck = dumbbell.Topology.bottleneck in
    Link.total_queue_wait bneck /. float_of_int (Stdlib.max 1 (Link.packets_delivered bneck))
  in
  let vegas_delay = run (Vegas.make ()) in
  let cubic_delay = run (Cubic.make Cubic.default_params) in
  Alcotest.(check bool) "vegas queues far less than cubic" true
    (vegas_delay < cubic_delay /. 2.)

(* {2 Receiver} *)

(* A loopback node pair: receiver on node 1, ACKs captured by a probe
   bound on node 0 via a direct link pair.  The probe copies every field
   out of the pooled handle before it is recycled, recording
   (cumulative ack, rtt echo, sack blocks) per ACK, newest first. *)
let receiver_fixture () =
  let engine = Engine.create () in
  let pool = Packet.create_pool () in
  let a = Node.create engine pool ~id:0 in
  let b = Node.create engine pool ~id:1 in
  let ab = Link.create engine pool ~bandwidth_bps:1e9 ~delay_s:0.001 ~capacity_pkts:1000 in
  let ba = Link.create engine pool ~bandwidth_bps:1e9 ~delay_s:0.001 ~capacity_pkts:1000 in
  Link.set_receiver ab (Node.receive b);
  Link.set_receiver ba (Node.receive a);
  Node.add_route a ~dst:1 ab;
  Node.add_route b ~dst:0 ba;
  let acks = ref [] in
  Node.bind_flow a ~flow:0 (fun pkt ->
      let echo =
        if Packet.ack_has_echo pool pkt then Some (Packet.ack_echo_sent_at pool pkt) else None
      in
      let sack =
        List.init (Packet.sack_count pool pkt) (fun i ->
            (Packet.sack_lo pool pkt i, Packet.sack_hi pool pkt i))
      in
      acks := (Packet.seq pool pkt, echo, sack) :: !acks);
  let recv = Receiver.create engine ~node:b ~flow:0 ~peer:0 in
  (engine, a, recv, acks)

let send_data engine node ~seq ~retransmit =
  Node.receive node
    (Packet.acquire_data (Node.pool node) ~flow:0 ~src:0 ~dst:1 ~seq ~now:(Engine.now engine)
       ~retransmit)

let test_receiver_in_order () =
  let engine, a, recv, acks = receiver_fixture () in
  for seq = 0 to 2 do
    send_data engine a ~seq ~retransmit:false
  done;
  Engine.run engine;
  Alcotest.(check int) "next expected" 3 (Receiver.next_expected recv);
  Alcotest.(check int) "three acks" 3 (List.length !acks);
  let cums = List.rev_map (fun (c, _, _) -> c) !acks in
  Alcotest.(check (list int)) "cumulative acks" [ 1; 2; 3 ] cums

let test_receiver_out_of_order_sack () =
  let engine, a, recv, acks = receiver_fixture () in
  send_data engine a ~seq:0 ~retransmit:false;
  send_data engine a ~seq:2 ~retransmit:false;
  send_data engine a ~seq:3 ~retransmit:false;
  Engine.run engine;
  Alcotest.(check int) "stuck at 1" 1 (Receiver.next_expected recv);
  let _, _, sack = List.hd !acks in
  Alcotest.(check (list (pair int int))) "sack block [2,4)" [ (2, 4) ] sack;
  (* Filling the hole advances over the buffered run. *)
  send_data engine a ~seq:1 ~retransmit:false;
  Engine.run engine;
  Alcotest.(check int) "advanced to 4" 4 (Receiver.next_expected recv)

let test_receiver_duplicate_segments () =
  let engine, a, recv, _acks = receiver_fixture () in
  send_data engine a ~seq:0 ~retransmit:false;
  Engine.run engine;
  send_data engine a ~seq:0 ~retransmit:true;
  Engine.run engine;
  Alcotest.(check int) "one distinct" 1 (Receiver.segments_received recv);
  Alcotest.(check int) "dup counted" 1 (Receiver.duplicate_segments recv)

let test_receiver_karn_no_echo_on_retransmit () =
  let engine, a, _recv, acks = receiver_fixture () in
  send_data engine a ~seq:0 ~retransmit:true;
  Engine.run engine;
  let _, echo, _ = List.hd !acks in
  Alcotest.(check bool) "no echo" true (echo = None)

(* The flat in-slab SACK ring must emit exactly the blocks the old
   cons-list collector did.  [Sack_model] is that old algorithm kept
   verbatim (list state, filter/take); the property drives the real
   receiver and the model over the same random arrival order and
   compares every ACK. *)
module Sack_model = struct
  type t = {
    buffered : (int, unit) Hashtbl.t;
    mutable recent : int list;
    mutable next_expected : int;
  }

  let create () = { buffered = Hashtbl.create 16; recent = []; next_expected = 0 }

  let block_around t seq =
    let lo = ref seq in
    while Hashtbl.mem t.buffered (!lo - 1) do decr lo done;
    let hi = ref (seq + 1) in
    while Hashtbl.mem t.buffered !hi do incr hi done;
    (!lo, !hi)

  let sack_blocks t =
    let rec collect acc seen = function
      | [] -> List.rev acc
      | _ when List.length acc >= Packet.max_sack_blocks -> List.rev acc
      | seq :: rest ->
        if seq < t.next_expected || not (Hashtbl.mem t.buffered seq) then collect acc seen rest
        else
          let lo, hi = block_around t seq in
          if List.mem (lo, hi) seen then collect acc seen rest
          else collect ((lo, hi) :: acc) ((lo, hi) :: seen) rest
    in
    collect [] [] t.recent

  let remember_recent t seq =
    let keep = List.filter (fun s -> s <> seq && s >= t.next_expected) t.recent in
    let rec take n = function
      | [] -> []
      | _ when n = 0 -> []
      | x :: rest -> x :: take (n - 1) rest
    in
    t.recent <- seq :: take (Packet.max_sack_blocks * 2) keep

  (* One data arrival; returns (cumulative ack, sack) exactly as the old
     receiver would have ACKed it. *)
  let receive t seq =
    if seq < t.next_expected || Hashtbl.mem t.buffered seq then (t.next_expected, sack_blocks t)
    else if seq = t.next_expected then begin
      t.next_expected <- t.next_expected + 1;
      while Hashtbl.mem t.buffered t.next_expected do
        Hashtbl.remove t.buffered t.next_expected;
        t.next_expected <- t.next_expected + 1
      done;
      t.recent <- List.filter (fun s -> s >= t.next_expected) t.recent;
      (t.next_expected, sack_blocks t)
    end
    else begin
      Hashtbl.add t.buffered seq ();
      remember_recent t seq;
      (t.next_expected, sack_blocks t)
    end
end

let prop_sack_ring_matches_list_model =
  QCheck.Test.make
    ~name:"flat SACK ring emits the same blocks as the old cons-list collector" ~count:200
    QCheck.(pair (int_range 0 10_000) (int_range 1 60))
    (fun (seed, n) ->
      let rng = Prng.create ~seed in
      (* A scrambled arrival order with a few duplicates at the end. *)
      let arrivals = Array.init n (fun i -> i) in
      Prng.shuffle rng arrivals;
      let dups = List.init (Stdlib.min 5 n) (fun _ -> arrivals.(Prng.int rng ~bound:n)) in
      let order = Array.to_list arrivals @ dups in
      let engine, a, _recv, acks = receiver_fixture () in
      let model = Sack_model.create () in
      let expected = List.map (Sack_model.receive model) order in
      List.iter (fun seq -> send_data engine a ~seq ~retransmit:false) order;
      Engine.run engine;
      let got = List.rev_map (fun (cum, _echo, sack) -> (cum, sack)) !acks in
      got = expected)

(* {2 Sender end-to-end} *)

type fixture = {
  engine : Engine.t;
  dumbbell : Topology.dumbbell;
  sender : Sender.t;
  receiver : Receiver.t;
}

let sender_fixture ?(spec = { Topology.paper_spec with Topology.n = 1 }) ?(total = 200)
    ?(cc = Cubic.make Cubic.default_params) () =
  let engine = Engine.create () in
  let dumbbell = Topology.dumbbell engine spec in
  let receiver =
    Receiver.create engine ~node:dumbbell.Topology.receivers.(0) ~flow:0 ~peer:0
  in
  let sender =
    Sender.create engine
      ~node:dumbbell.Topology.senders.(0)
      ~flow:0
      ~dst:(Topology.receiver_id dumbbell 0)
      ~cc ~total_segments:total ()
  in
  { engine; dumbbell; sender; receiver }

let test_sender_completes_clean_path () =
  let f = sender_fixture ~total:100 () in
  let completed = ref None in
  let f =
    (* Rebuild with an on_complete hook. *)
    ignore f;
    let engine = Engine.create () in
    let dumbbell = Topology.dumbbell engine { Topology.paper_spec with Topology.n = 1 } in
    let receiver = Receiver.create engine ~node:dumbbell.Topology.receivers.(0) ~flow:0 ~peer:0 in
    let sender =
      Sender.create engine
        ~node:dumbbell.Topology.senders.(0)
        ~flow:0
        ~dst:(Topology.receiver_id dumbbell 0)
        ~cc:(Cubic.make Cubic.default_params) ~total_segments:100
        ~on_complete:(fun stats -> completed := Some stats)
        ()
    in
    { engine; dumbbell; sender; receiver }
  in
  Sender.start f.sender;
  Engine.run f.engine;
  Alcotest.(check bool) "completed" true (Sender.completed f.sender);
  Alcotest.(check int) "all acked" 100 (Sender.acked_segments f.sender);
  Alcotest.(check int) "receiver got all" 100 (Receiver.segments_received f.receiver);
  Alcotest.(check int) "no retransmissions" 0 (Sender.retransmitted_segments f.sender);
  match !completed with
  | None -> Alcotest.fail "no completion callback"
  | Some stats ->
    Alcotest.(check int) "stats bytes" (100 * Packet.mss) stats.Flow.bytes;
    Alcotest.(check bool) "rtt sampled" true (stats.Flow.rtt_samples > 0);
    Alcotest.(check bool) "min rtt sane" true (stats.Flow.min_rtt > 0.14 && stats.Flow.min_rtt < 0.2)

let test_sender_throughput_bounded_by_link () =
  let f = sender_fixture ~total:2000 () in
  Sender.start f.sender;
  Engine.run f.engine;
  let stats = Sender.stats f.sender in
  let thr = Flow.throughput_bps stats in
  Alcotest.(check bool) "below capacity" true (thr <= 15e6 +. 1e-6);
  Alcotest.(check bool) "above half capacity" true (thr > 7.5e6)

let test_sender_recovers_from_injected_loss () =
  let f = sender_fixture ~total:500 () in
  Link.set_fault_injection f.dumbbell.Topology.bottleneck ~rng:(Prng.create ~seed:5)
    ~drop_probability:0.02;
  Sender.start f.sender;
  Engine.run f.engine;
  Alcotest.(check bool) "completed despite loss" true (Sender.completed f.sender);
  Alcotest.(check int) "receiver got everything" 500 (Receiver.segments_received f.receiver);
  Alcotest.(check bool) "did retransmit" true (Sender.retransmitted_segments f.sender > 0)

let test_sender_recovers_from_severe_loss () =
  let f = sender_fixture ~total:300 () in
  Link.set_fault_injection f.dumbbell.Topology.bottleneck ~rng:(Prng.create ~seed:6)
    ~drop_probability:0.2;
  Sender.start f.sender;
  Engine.run f.engine;
  Alcotest.(check bool) "completed at 20% loss" true (Sender.completed f.sender)

let test_sender_abort_cancels () =
  let f = sender_fixture ~total:10_000 () in
  Sender.start f.sender;
  Engine.run ~until:1. f.engine;
  Sender.abort f.sender;
  Engine.run f.engine;
  Alcotest.(check bool) "engine drains after abort" true (Engine.pending f.engine = 0)

let test_sender_cwnd_grows_in_slow_start () =
  let f = sender_fixture ~total:5000 () in
  Sender.start f.sender;
  Engine.run ~until:1. f.engine;
  Alcotest.(check bool) "grew from 2" true (Sender.cwnd f.sender > 8.)

let test_sender_timeout_on_blackout () =
  (* Drop everything after the first RTT: only the RTO path can notice. *)
  let f = sender_fixture ~total:50 () in
  Sender.start f.sender;
  Engine.run ~until:0.5 f.engine;
  Link.set_fault_injection f.dumbbell.Topology.bottleneck ~rng:(Prng.create ~seed:7)
    ~drop_probability:1.0;
  Engine.run ~until:10. f.engine;
  Alcotest.(check bool) "timeouts fired" true (Sender.timeouts f.sender > 0);
  (* Heal the path; the transfer must finish. *)
  Link.set_fault_injection f.dumbbell.Topology.bottleneck ~rng:(Prng.create ~seed:8)
    ~drop_probability:0.;
  Engine.run f.engine;
  Alcotest.(check bool) "completed after healing" true (Sender.completed f.sender)

let test_ecn_marks_instead_of_drops () =
  (* A sane initial ssthresh avoids the slow-start burst that would
     physically overflow the queue before RED's lagging average reacts;
     with it, ECN carries the whole congestion signal without a single
     drop or retransmission. *)
  let cc () = Cubic.make (Cubic.with_knobs ~initial_ssthresh:64. Cubic.default_params) in
  let run ~ecn =
    let f = sender_fixture ~cc:(cc ()) ~total:Sender.persistent_total () in
    let bneck = f.dumbbell.Topology.bottleneck in
    Link.set_discipline bneck ~rng:(Prng.create ~seed:11)
      (Link.Red (Link.default_red ~ecn ~capacity_pkts:(Link.capacity_pkts bneck) ()));
    Sender.start f.sender;
    Engine.run ~until:30. f.engine;
    (f, bneck)
  in
  let f_ecn, bneck_ecn = run ~ecn:true in
  let _f_red, bneck_red = run ~ecn:false in
  Alcotest.(check bool) "marks happened" true (Link.ecn_marks bneck_ecn > 0);
  Alcotest.(check int) "no drops" 0 (Link.drops bneck_ecn);
  Alcotest.(check int) "no retransmissions" 0
    (Sender.retransmitted_segments f_ecn.sender);
  Alcotest.(check bool) "sender reduced on echoes" true
    (Sender.ecn_reductions f_ecn.sender > 0);
  Alcotest.(check bool) "drop-based RED does drop" true (Link.drops bneck_red > 0);
  let thr = Flow.throughput_bps (Sender.stats f_ecn.sender) in
  Alcotest.(check bool) "still near capacity" true (thr > 10e6)

let test_ecn_reacts_at_most_once_per_rtt () =
  let f = sender_fixture ~total:Sender.persistent_total () in
  Link.set_discipline f.dumbbell.Topology.bottleneck ~rng:(Prng.create ~seed:12)
    (Link.Red
       (Link.default_red ~ecn:true
          ~capacity_pkts:(Link.capacity_pkts f.dumbbell.Topology.bottleneck)
          ()));
  Sender.start f.sender;
  Engine.run ~until:30. f.engine;
  (* 30 s at ~0.15-0.2 s RTT: reductions bounded by elapsed/RTT. *)
  Alcotest.(check bool) "reductions rate-limited" true
    (Sender.ecn_reductions f.sender <= 200)

let test_cwnd_trace_records_growth () =
  let f = sender_fixture ~total:Sender.persistent_total () in
  let trace = Cwnd_trace.attach f.engine f.sender ~interval_s:0.1 in
  Sender.start f.sender;
  Engine.run ~until:5. f.engine;
  let series = Cwnd_trace.series trace in
  Alcotest.(check bool) "sampled" true (Array.length series >= 40);
  let times = Array.map fst series in
  let sorted = Array.copy times in
  Array.sort Float.compare sorted;
  Alcotest.(check (array (float 0.))) "time ordered" sorted times;
  Alcotest.(check bool) "window grew" true (Cwnd_trace.max_cwnd trace > 2.);
  Cwnd_trace.stop trace;
  let before = Array.length (Cwnd_trace.series trace) in
  Engine.run ~until:6. f.engine;
  Alcotest.(check int) "stop stops sampling" before (Array.length (Cwnd_trace.series trace))

let prop_delivery_integrity =
  QCheck.Test.make ~name:"tcp delivers everything exactly once under random loss" ~count:25
    QCheck.(pair (int_range 1 400) (pair (int_range 0 10_000) (int_range 0 15)))
    (fun (total, (seed, loss_pct)) ->
      let engine = Engine.create () in
      let dumbbell =
        Topology.dumbbell engine { Topology.paper_spec with Topology.n = 1 }
      in
      let receiver =
        Receiver.create engine ~node:dumbbell.Topology.receivers.(0) ~flow:0 ~peer:0
      in
      let sender =
        Sender.create engine
          ~node:dumbbell.Topology.senders.(0)
          ~flow:0
          ~dst:(Topology.receiver_id dumbbell 0)
          ~cc:(Cubic.make Cubic.default_params) ~total_segments:total ()
      in
      Link.set_fault_injection dumbbell.Topology.bottleneck ~rng:(Prng.create ~seed)
        ~drop_probability:(float_of_int loss_pct /. 100.);
      Sender.start sender;
      Engine.run ~until:600. engine;
      Sender.completed sender
      && Receiver.segments_received receiver = total
      && Receiver.next_expected receiver = total)

(* The min-cwnd floor lives in exactly one place — the sender, after
   every controller hook.  This adversarial controller poisons cwnd and
   ssthresh with NaN, negative, zero and sub-floor values on every loss
   and timeout; the sender must keep the effective window finite and at
   or above one segment throughout, and still finish the transfer. *)
let buggy_cc () =
  let garbage = [| -5.; 0.; 0.5; Float.nan |] in
  let k = ref 0 in
  let poison (cc : Cc.t) =
    cc.Cc.cwnd <- garbage.(!k mod Array.length garbage);
    cc.Cc.ssthresh <- garbage.((!k + 1) mod Array.length garbage);
    incr k
  in
  Cc.make ~name:"buggy" ~initial_cwnd:4. ~initial_ssthresh:8.
    ~on_ack:(fun cc ~now:_ ~rtt:_ ~sent_at:_ ~newly_acked:_ -> cc.Cc.cwnd <- cc.Cc.cwnd +. 0.5)
    ~on_loss:(fun cc ~now:_ -> poison cc)
    ~on_timeout:(fun cc ~now:_ -> poison cc)
    ()

let prop_sender_floors_buggy_controllers =
  QCheck.Test.make
    ~name:"sender floors cwnd against adversarial controllers (NaN/negative/sub-min)" ~count:15
    QCheck.(pair (int_range 0 10_000) (int_range 5 25))
    (fun (seed, loss_pct) ->
      let engine = Engine.create () in
      let dumbbell = Topology.dumbbell engine { Topology.paper_spec with Topology.n = 1 } in
      let receiver =
        Receiver.create engine ~node:dumbbell.Topology.receivers.(0) ~flow:0 ~peer:0
      in
      let sender =
        Sender.create engine
          ~node:dumbbell.Topology.senders.(0)
          ~flow:0
          ~dst:(Topology.receiver_id dumbbell 0)
          ~cc:(buggy_cc ()) ~total_segments:150 ()
      in
      Link.set_fault_injection dumbbell.Topology.bottleneck ~rng:(Prng.create ~seed)
        ~drop_probability:(float_of_int loss_pct /. 100.);
      Sender.start sender;
      (* Step in one-second slices so the invariant is checked while the
         adversary is mid-flight, not just at the end. *)
      let ok = ref true in
      let t = ref 0. in
      while !ok && (not (Sender.completed sender)) && !t < 600. do
        t := !t +. 1.;
        Engine.run ~until:!t engine;
        let w = Sender.cwnd sender in
        if not (Float.is_finite w && w >= 1.) then ok := false
      done;
      !ok && Sender.completed sender && Receiver.segments_received receiver = 150)

let suite =
  [
    ("rto initial", `Quick, test_rto_initial);
    ("rto first sample", `Quick, test_rto_first_sample);
    ("rto converges", `Quick, test_rto_converges);
    ("rto backoff", `Quick, test_rto_backoff);
    ("rto min max", `Quick, test_rto_min_max);
    ("reno slow start then ca", `Quick, test_reno_slow_start_then_ca);
    ("reno loss halves", `Quick, test_reno_loss_halves);
    ("reno timeout resets", `Quick, test_reno_timeout_resets);
    ("reno raw halving (floor is the sender's)", `Quick, test_reno_raw_halving);
    ("weighted reno increase", `Quick, test_weighted_reno_increase);
    ("weighted reno decrease", `Quick, test_weighted_reno_gentle_decrease);
    ("weighted reno bad weight", `Quick, test_weighted_reno_rejects_bad_weight);
    ("cubic defaults match table 1", `Quick, test_cubic_defaults_match_table1);
    ("cubic slow start", `Quick, test_cubic_slow_start);
    ("cubic beta decrease", `Quick, test_cubic_beta_decrease);
    ("cubic concave/convex growth", `Quick, test_cubic_concave_convex_growth);
    ("cubic timeout", `Quick, test_cubic_timeout);
    ("cubic rejects bad beta", `Quick, test_cubic_rejects_bad_beta);
    ("cubic params to string", `Quick, test_cubic_params_to_string);
    ("vegas grows when queue empty", `Quick, test_vegas_grows_when_queue_empty);
    ("vegas shrinks when queue builds", `Quick, test_vegas_shrinks_when_queue_builds);
    ("vegas loss vs timeout", `Quick, test_vegas_loss_decrease_gentler_than_timeout);
    ("vegas validation", `Quick, test_vegas_validation);
    ("vegas keeps queue short", `Slow, test_vegas_keeps_queue_short_end_to_end);
    ("receiver in order", `Quick, test_receiver_in_order);
    ("receiver out of order sack", `Quick, test_receiver_out_of_order_sack);
    ("receiver duplicate segments", `Quick, test_receiver_duplicate_segments);
    ("receiver karn", `Quick, test_receiver_karn_no_echo_on_retransmit);
    QCheck_alcotest.to_alcotest prop_sack_ring_matches_list_model;
    ("sender completes clean path", `Quick, test_sender_completes_clean_path);
    ("sender throughput bounded", `Quick, test_sender_throughput_bounded_by_link);
    ("sender recovers from loss", `Quick, test_sender_recovers_from_injected_loss);
    ("sender recovers from severe loss", `Quick, test_sender_recovers_from_severe_loss);
    ("sender abort", `Quick, test_sender_abort_cancels);
    ("sender slow start growth", `Quick, test_sender_cwnd_grows_in_slow_start);
    ("sender timeout on blackout", `Quick, test_sender_timeout_on_blackout);
    ("ecn marks instead of drops", `Quick, test_ecn_marks_instead_of_drops);
    ("ecn once per rtt", `Quick, test_ecn_reacts_at_most_once_per_rtt);
    ("cwnd trace", `Quick, test_cwnd_trace_records_growth);
    QCheck_alcotest.to_alcotest ~long:true prop_delivery_integrity;
    QCheck_alcotest.to_alcotest prop_sender_floors_buggy_controllers;
  ]
