(* Tests for phi_util: PRNG, distributions, statistics, tables. *)

open Phi_util

let check_float = Alcotest.(check (float 1e-9))
let check_close tolerance = Alcotest.(check (float tolerance))

(* {2 Prng} *)

let test_prng_determinism () =
  let a = Prng.create ~seed:42 and b = Prng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create ~seed:1 and b = Prng.create ~seed:2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Prng.bits64 a <> Prng.bits64 b then differs := true
  done;
  Alcotest.(check bool) "different seeds diverge" true !differs

let test_prng_split_independence () =
  let parent = Prng.create ~seed:7 in
  let child = Prng.split parent in
  let a = Prng.bits64 parent and b = Prng.bits64 child in
  Alcotest.(check bool) "split stream differs" true (a <> b)

let test_prng_copy () =
  let a = Prng.create ~seed:9 in
  ignore (Prng.bits64 a);
  let b = Prng.copy a in
  Alcotest.(check int64) "copy replays" (Prng.bits64 a) (Prng.bits64 b)

let test_prng_float_range () =
  let rng = Prng.create ~seed:3 in
  for _ = 1 to 1000 do
    let x = Prng.float rng in
    Alcotest.(check bool) "in [0,1)" true (x >= 0. && x < 1.)
  done

let test_prng_int_bounds () =
  let rng = Prng.create ~seed:4 in
  for _ = 1 to 1000 do
    let x = Prng.int rng ~bound:7 in
    Alcotest.(check bool) "in [0,7)" true (x >= 0 && x < 7)
  done;
  Alcotest.check_raises "bound 0 rejected" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int rng ~bound:0))

let test_prng_int_uniformity () =
  let rng = Prng.create ~seed:5 in
  let counts = Array.make 4 0 in
  let n = 40_000 in
  for _ = 1 to n do
    let i = Prng.int rng ~bound:4 in
    counts.(i) <- counts.(i) + 1
  done;
  Array.iter
    (fun c ->
      let frac = float_of_int c /. float_of_int n in
      check_close 0.02 "roughly uniform" 0.25 frac)
    counts

let test_prng_shuffle_permutes () =
  let rng = Prng.create ~seed:6 in
  let a = Array.init 20 (fun i -> i) in
  Prng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort Int.compare sorted;
  Alcotest.(check (array int)) "same elements" (Array.init 20 (fun i -> i)) sorted

let test_prng_choose () =
  let rng = Prng.create ~seed:8 in
  Alcotest.(check int) "singleton" 5 (Prng.choose rng [| 5 |]);
  Alcotest.check_raises "empty rejected" (Invalid_argument "Prng.choose: empty array")
    (fun () -> ignore (Prng.choose rng [||]))

(* {2 Dist} *)

let mean_of f rng n =
  let acc = ref 0. in
  for _ = 1 to n do
    acc := !acc +. f rng
  done;
  !acc /. float_of_int n

let test_exponential_mean () =
  let rng = Prng.create ~seed:10 in
  let m = mean_of (fun r -> Dist.exponential r ~mean:2.5) rng 50_000 in
  check_close 0.1 "mean ~2.5" 2.5 m

let test_exponential_positive () =
  let rng = Prng.create ~seed:11 in
  for _ = 1 to 1000 do
    Alcotest.(check bool) "non-negative" true (Dist.exponential rng ~mean:1. >= 0.)
  done

let test_exponential_rejects_bad_mean () =
  let rng = Prng.create ~seed:12 in
  Alcotest.check_raises "mean 0" (Invalid_argument "Dist.exponential: mean must be positive")
    (fun () -> ignore (Dist.exponential rng ~mean:0.))

let test_normal_moments () =
  let rng = Prng.create ~seed:13 in
  let n = 50_000 in
  let samples = Array.init n (fun _ -> Dist.normal rng ~mu:3. ~sigma:2.) in
  check_close 0.05 "mean" 3. (Stats.mean samples);
  check_close 0.1 "stddev" 2. (Stats.stddev samples)

let test_pareto_scale_floor () =
  let rng = Prng.create ~seed:14 in
  for _ = 1 to 1000 do
    Alcotest.(check bool) "above scale" true (Dist.pareto rng ~shape:1.5 ~scale:4. >= 4.)
  done

let test_poisson_mean () =
  let rng = Prng.create ~seed:15 in
  let m = mean_of (fun r -> float_of_int (Dist.poisson r ~lambda:6.5)) rng 30_000 in
  check_close 0.15 "mean ~6.5" 6.5 m

let test_poisson_large_lambda () =
  let rng = Prng.create ~seed:16 in
  let m = mean_of (fun r -> float_of_int (Dist.poisson r ~lambda:500.)) rng 5_000 in
  check_close 5. "normal approximation" 500. m

let test_poisson_zero () =
  let rng = Prng.create ~seed:17 in
  Alcotest.(check int) "lambda 0" 0 (Dist.poisson rng ~lambda:0.)

let test_zipf_rank_ordering () =
  let rng = Prng.create ~seed:18 in
  let z = Dist.zipf ~n:50 ~alpha:1.2 in
  let counts = Array.make 50 0 in
  for _ = 1 to 50_000 do
    let i = Dist.zipf_draw z rng in
    counts.(i) <- counts.(i) + 1
  done;
  Alcotest.(check bool) "rank 0 most popular" true (counts.(0) > counts.(10));
  Alcotest.(check bool) "rank 10 beats rank 40" true (counts.(10) > counts.(40));
  Alcotest.(check int) "support" 50 (Dist.zipf_support z)

let test_zipf_bounds () =
  let rng = Prng.create ~seed:19 in
  let z = Dist.zipf ~n:5 ~alpha:0.8 in
  for _ = 1 to 1000 do
    let i = Dist.zipf_draw z rng in
    Alcotest.(check bool) "in range" true (i >= 0 && i < 5)
  done

(* {2 Stats} *)

let test_mean_variance () =
  let xs = [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |] in
  check_float "mean" 5. (Stats.mean xs);
  check_close 1e-9 "variance" (32. /. 7.) (Stats.variance xs)

let test_variance_singleton () = check_float "singleton" 0. (Stats.variance [| 42. |])

let test_percentile_interpolation () =
  let xs = [| 1.; 2.; 3.; 4. |] in
  check_float "p0" 1. (Stats.percentile xs ~p:0.);
  check_float "p100" 4. (Stats.percentile xs ~p:100.);
  check_float "median interpolates" 2.5 (Stats.median xs)

let test_percentile_does_not_mutate () =
  let xs = [| 3.; 1.; 2. |] in
  ignore (Stats.percentile xs ~p:50.);
  Alcotest.(check (array (float 0.))) "unchanged" [| 3.; 1.; 2. |] xs

let test_percentile_rejects_out_of_range () =
  Alcotest.check_raises "p > 100" (Invalid_argument "Stats.percentile: p out of range")
    (fun () -> ignore (Stats.percentile [| 1. |] ~p:101.))

let test_empty_sample_rejected () =
  Alcotest.check_raises "empty mean" (Invalid_argument "Stats.mean: empty sample") (fun () ->
      ignore (Stats.mean [||]))

let test_cdf_and_survival () =
  let xs = [| 1.; 2.; 3.; 4.; 5. |] in
  check_float "cdf at 3" 0.6 (Stats.cdf_at xs ~x:3.);
  check_float "frac >= 4" 0.4 (Stats.fraction_at_least xs ~threshold:4.)

let test_summary () =
  let xs = Array.init 101 (fun i -> float_of_int i) in
  let s = Stats.summarize xs in
  Alcotest.(check int) "count" 101 s.Stats.count;
  check_float "median" 50. s.Stats.median;
  check_float "min" 0. s.Stats.min;
  check_float "max" 100. s.Stats.max;
  check_float "p90" 90. s.Stats.p90

let test_jain () =
  check_float "empty is fair" 1. (Stats.jain [||]);
  check_float "singleton" 1. (Stats.jain [| 42. |]);
  check_float "all-zero is idle, not unfair" 1. (Stats.jain [| 0.; 0.; 0. |]);
  check_float "uniform" 1. (Stats.jain [| 3.; 3.; 3.; 3. |]);
  (* One flow hogging everything: index collapses to 1/n. *)
  check_float "one-hot" 0.25 (Stats.jain [| 0.; 0.; 8.; 0. |]);
  let mixed = Stats.jain [| 1.; 2.; 3. |] in
  Alcotest.(check bool) "mixed in (1/n, 1)" true (mixed > 1. /. 3. && mixed < 1.)

let test_ewma () =
  let e = Stats.ewma ~alpha:0.5 in
  Alcotest.(check (option (float 0.))) "empty" None (Stats.ewma_value e);
  Stats.ewma_update e 10.;
  check_float "first sample" 10. (Stats.ewma_value_or e ~default:0.);
  Stats.ewma_update e 20.;
  check_float "blended" 15. (Stats.ewma_value_or e ~default:0.)

let test_ewma_alpha_validation () =
  Alcotest.check_raises "alpha 0" (Invalid_argument "Stats.ewma: alpha must be in (0, 1]")
    (fun () -> ignore (Stats.ewma ~alpha:0.))

(* {2 Table} *)

let test_table_render () =
  let out = Table.render ~headers:[ "a"; "bb" ] [ [ "1"; "2" ]; [ "33"; "4" ] ] in
  Alcotest.(check bool) "contains header" true (String.length out > 0);
  let lines = String.split_on_char '\n' out in
  Alcotest.(check int) "4 lines + trailing" 5 (List.length lines);
  (* All non-empty lines share the same width. *)
  let widths =
    List.filter_map (fun l -> if l = "" then None else Some (String.length l)) lines
  in
  List.iter (fun w -> Alcotest.(check int) "aligned" (List.hd widths) w) widths

let test_table_pads_short_rows () =
  let out = Table.render ~headers:[ "x"; "y" ] [ [ "1" ] ] in
  Alcotest.(check bool) "renders" true (String.length out > 0)

let test_fmt_float () =
  Alcotest.(check string) "2 decimals" "3.14" (Table.fmt_float 3.14159);
  Alcotest.(check string) "0 decimals" "3" (Table.fmt_float ~decimals:0 3.14159)

(* {2 Csv} *)

let test_csv_escape () =
  Alcotest.(check string) "plain untouched" "abc" (Csv.escape "abc");
  Alcotest.(check string) "comma quoted" "\"a,b\"" (Csv.escape "a,b");
  Alcotest.(check string) "quote doubled" "\"a\"\"b\"" (Csv.escape "a\"b")

let test_csv_write_roundtrip () =
  let path = Filename.temp_file "phi_test" ".csv" in
  Csv.write ~path ~header:[ "x"; "y" ] [ [ "1"; "hello" ]; [ "2"; "wo,rld" ] ];
  let ic = open_in path in
  let l1 = input_line ic in
  let l2 = input_line ic in
  let l3 = input_line ic in
  let lines = [ l1; l2; l3 ] in
  close_in ic;
  Sys.remove path;
  Alcotest.(check (list string)) "contents" [ "x,y"; "1,hello"; "2,\"wo,rld\"" ] lines

let test_csv_write_mkdirs () =
  let base =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "phi_test_mkdirs_%d" (Unix.getpid ()))
  in
  let path = Filename.concat (Filename.concat base "nested") "out.csv" in
  Csv.write ~mkdirs:true ~path ~header:[ "a" ] [ [ "1" ] ];
  Alcotest.(check bool) "file created under new dirs" true (Sys.file_exists path);
  (* Idempotent: the directories already exist on the second write. *)
  Csv.write ~mkdirs:true ~path ~header:[ "a" ] [ [ "2" ] ];
  Sys.remove path;
  Sys.rmdir (Filename.concat base "nested");
  Sys.rmdir base

let test_csv_mkdir_p_rejects_file_component () =
  let file = Filename.temp_file "phi_test" ".notdir" in
  Alcotest.(check bool) "raises Sys_error" true
    (match Csv.mkdir_p (Filename.concat file "sub") with
    | () -> false
    | exception Sys_error _ -> true);
  Sys.remove file

(* {2 Json} *)

let sample_json =
  Json.Obj
    [
      ("schema", Json.String "phi-bench-report/1");
      ("jobs", Json.Int 4);
      ("wall_s", Json.Float 1.25);
      ("ok", Json.Bool true);
      ("nothing", Json.Null);
      ("xs", Json.List [ Json.Int 1; Json.Int 2; Json.Int 3 ]);
      ("label", Json.String "quo\"te\nline");
    ]

let test_json_roundtrip () =
  List.iter
    (fun indent ->
      match Json.of_string (Json.to_string ~indent sample_json) with
      | Ok parsed ->
        Alcotest.(check bool)
          (Printf.sprintf "roundtrip indent=%d" indent)
          true (parsed = sample_json)
      | Error e -> Alcotest.fail ("parse failed: " ^ e))
    [ 0; 2 ]

let test_json_float_precision () =
  (* %.17g must round-trip any finite float bit-for-bit. *)
  List.iter
    (fun x ->
      match Json.of_string (Json.to_string (Json.float x)) with
      | Ok v ->
        let y = match v with Json.Float f -> f | Json.Int i -> float_of_int i | _ -> nan in
        Alcotest.(check (float 0.)) (Printf.sprintf "roundtrip %h" x) x y
      | Error e -> Alcotest.fail e)
    [ 0.1; 1. /. 3.; 12345.6789e-12; 1.7976931348623157e308 ]

let test_json_nonfinite_is_null () =
  let is_null = function Json.Null -> true | _ -> false in
  Alcotest.(check bool) "nan" true (is_null (Json.float nan));
  Alcotest.(check bool) "inf" true (is_null (Json.float infinity))

let test_json_parse_errors () =
  List.iter
    (fun src ->
      match Json.of_string src with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail (Printf.sprintf "accepted malformed %S" src))
    [ ""; "{"; "[1,]"; "{\"a\":}"; "1 trailing"; "\"unterminated"; "nul" ]

let test_json_unicode_escape () =
  match Json.of_string "\"\\u0041\\u00e9\"" with
  | Ok (Json.String s) -> Alcotest.(check string) "decoded escapes" "A\xc3\xa9" s
  | Ok _ | Error _ -> Alcotest.fail "unicode escape parse failed"

let test_json_member () =
  Alcotest.(check (option int)) "present" (Some 4)
    (match Json.member "jobs" sample_json with Some (Json.Int i) -> Some i | _ -> None);
  Alcotest.(check bool) "absent" true (Json.member "missing" sample_json = None);
  Alcotest.(check bool) "non-object" true (Json.member "a" (Json.Int 1) = None)

let test_json_to_file_roundtrip () =
  let path = Filename.temp_file "phi_test" ".json" in
  Json.to_file ~path sample_json;
  Alcotest.(check bool) "no tmp file left" false (Sys.file_exists (path ^ ".tmp"));
  (match Json.of_file ~path with
  | Ok parsed -> Alcotest.(check bool) "file roundtrip" true (parsed = sample_json)
  | Error e -> Alcotest.fail e);
  Sys.remove path

(* {2 Properties} *)

let prop_percentile_monotone =
  QCheck.Test.make ~name:"percentile monotone in p" ~count:200
    QCheck.(pair (array_of_size Gen.(int_range 1 30) (float_bound_exclusive 1000.)) (pair (float_bound_inclusive 100.) (float_bound_inclusive 100.)))
    (fun (xs, (p1, p2)) ->
      QCheck.assume (Array.length xs > 0);
      let lo = Float.min p1 p2 and hi = Float.max p1 p2 in
      Stats.percentile xs ~p:lo <= Stats.percentile xs ~p:hi +. 1e-9)

let prop_mean_within_bounds =
  QCheck.Test.make ~name:"mean between min and max" ~count:200
    QCheck.(array_of_size Gen.(int_range 1 50) (float_bound_exclusive 1000.))
    (fun xs ->
      QCheck.assume (Array.length xs > 0);
      let m = Stats.mean xs in
      m >= Stats.minimum xs -. 1e-9 && m <= Stats.maximum xs +. 1e-9)

let prop_zipf_in_support =
  QCheck.Test.make ~name:"zipf draws stay in support" ~count:100
    QCheck.(pair (int_range 1 40) (int_range 0 10_000))
    (fun (n, seed) ->
      let rng = Prng.create ~seed in
      let z = Dist.zipf ~n ~alpha:1.0 in
      let ok = ref true in
      for _ = 1 to 50 do
        let i = Dist.zipf_draw z rng in
        if i < 0 || i >= n then ok := false
      done;
      !ok)

let suite =
  [
    ("prng determinism", `Quick, test_prng_determinism);
    ("prng seed sensitivity", `Quick, test_prng_seed_sensitivity);
    ("prng split independence", `Quick, test_prng_split_independence);
    ("prng copy", `Quick, test_prng_copy);
    ("prng float range", `Quick, test_prng_float_range);
    ("prng int bounds", `Quick, test_prng_int_bounds);
    ("prng int uniformity", `Quick, test_prng_int_uniformity);
    ("prng shuffle permutes", `Quick, test_prng_shuffle_permutes);
    ("prng choose", `Quick, test_prng_choose);
    ("exponential mean", `Quick, test_exponential_mean);
    ("exponential positive", `Quick, test_exponential_positive);
    ("exponential rejects bad mean", `Quick, test_exponential_rejects_bad_mean);
    ("normal moments", `Quick, test_normal_moments);
    ("pareto scale floor", `Quick, test_pareto_scale_floor);
    ("poisson mean", `Quick, test_poisson_mean);
    ("poisson large lambda", `Quick, test_poisson_large_lambda);
    ("poisson zero", `Quick, test_poisson_zero);
    ("zipf rank ordering", `Quick, test_zipf_rank_ordering);
    ("zipf bounds", `Quick, test_zipf_bounds);
    ("mean and variance", `Quick, test_mean_variance);
    ("variance singleton", `Quick, test_variance_singleton);
    ("percentile interpolation", `Quick, test_percentile_interpolation);
    ("percentile does not mutate", `Quick, test_percentile_does_not_mutate);
    ("percentile range check", `Quick, test_percentile_rejects_out_of_range);
    ("empty sample rejected", `Quick, test_empty_sample_rejected);
    ("cdf and survival", `Quick, test_cdf_and_survival);
    ("summary", `Quick, test_summary);
    ("jain fairness", `Quick, test_jain);
    ("ewma", `Quick, test_ewma);
    ("ewma alpha validation", `Quick, test_ewma_alpha_validation);
    ("csv escape", `Quick, test_csv_escape);
    ("csv write roundtrip", `Quick, test_csv_write_roundtrip);
    ("table render", `Quick, test_table_render);
    ("table pads short rows", `Quick, test_table_pads_short_rows);
    ("fmt_float", `Quick, test_fmt_float);
    QCheck_alcotest.to_alcotest prop_percentile_monotone;
    QCheck_alcotest.to_alcotest prop_mean_within_bounds;
    QCheck_alcotest.to_alcotest prop_zipf_in_support;
  ]
