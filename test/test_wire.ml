(* The context-plane wire format: exact round-trips, NaN sentinel
   survival, and a decoder that rejects (never raises on) malformed
   bytes. *)

module Wire = Phi.Context_wire
module Context = Phi.Context

let check_float name a b =
  if Float.is_nan a then Alcotest.(check bool) (name ^ " nan") true (Float.is_nan b)
  else Alcotest.(check bool) name true (Float.equal a b)

let roundtrip_request req =
  match Wire.decode_request (Wire.request_to_string req) with
  | Ok r -> r
  | Error e -> Alcotest.fail ("request failed to decode: " ^ e)

let roundtrip_response resp =
  match Wire.decode_response (Wire.response_to_string resp) with
  | Ok r -> r
  | Error e -> Alcotest.fail ("response failed to decode: " ^ e)

let test_lookup_roundtrip () =
  match roundtrip_request (Wire.Lookup { path = "subnet-4242"; max_staleness = 3 }) with
  | Wire.Lookup { path; max_staleness } ->
    Alcotest.(check string) "path" "subnet-4242" path;
    Alcotest.(check int) "staleness" 3 max_staleness
  | Wire.Report _ -> Alcotest.fail "tag confusion"

let test_report_roundtrip () =
  let req =
    Wire.Report
      {
        path = "p";
        bytes = max_int;
        duration_s = 12.25;
        min_rtt = 0.02;
        mean_rtt = 0.0275;
        retransmitted = 0;
        segments = 1 lsl 40;
      }
  in
  match roundtrip_request req with
  | Wire.Report { path; bytes; duration_s; min_rtt; mean_rtt; retransmitted; segments } ->
    Alcotest.(check string) "path" "p" path;
    Alcotest.(check int) "bytes (max_int varint)" max_int bytes;
    check_float "duration" 12.25 duration_s;
    check_float "min rtt" 0.02 min_rtt;
    check_float "mean rtt" 0.0275 mean_rtt;
    Alcotest.(check int) "retransmitted" 0 retransmitted;
    Alcotest.(check int) "segments" (1 lsl 40) segments
  | Wire.Lookup _ -> Alcotest.fail "tag confusion"

(* A connection that took no RTT sample reports NaN; the sentinel must
   survive the trip bit-exactly enough to still be NaN. *)
let test_nan_sentinel_survives () =
  let req =
    Wire.Report
      {
        path = "";
        bytes = 0;
        duration_s = 0.;
        min_rtt = Float.nan;
        mean_rtt = Float.nan;
        retransmitted = 0;
        segments = 0;
      }
  in
  match roundtrip_request req with
  | Wire.Report { path; min_rtt; mean_rtt; _ } ->
    Alcotest.(check string) "empty path ok" "" path;
    Alcotest.(check bool) "min nan" true (Float.is_nan min_rtt);
    Alcotest.(check bool) "mean nan" true (Float.is_nan mean_rtt)
  | Wire.Lookup _ -> Alcotest.fail "tag confusion"

let test_response_roundtrip () =
  let ctx =
    { Context.utilization = 0.73; queue_delay_s = 1e-3; competing_senders = 17; loss_rate = 0.05 }
  in
  (match roundtrip_response (Wire.Context_of { ctx; epoch = 999 }) with
  | Wire.Context_of { ctx = c; epoch } ->
    Alcotest.(check int) "epoch" 999 epoch;
    check_float "utilization" ctx.Context.utilization c.Context.utilization;
    check_float "queue delay" ctx.Context.queue_delay_s c.Context.queue_delay_s;
    Alcotest.(check int) "senders" 17 c.Context.competing_senders;
    check_float "loss" ctx.Context.loss_rate c.Context.loss_rate
  | Wire.Accepted _ -> Alcotest.fail "tag confusion");
  match roundtrip_response (Wire.Accepted { epoch = 0 }) with
  | Wire.Accepted { epoch } -> Alcotest.(check int) "accepted epoch" 0 epoch
  | Wire.Context_of _ -> Alcotest.fail "tag confusion"

let expect_error name = function
  | Error (_ : string) -> ()
  | Ok (_ : Wire.request) -> Alcotest.fail (name ^ ": malformed bytes decoded")

let test_malformed_rejected () =
  let good = Wire.request_to_string (Wire.Lookup { path = "subnet-1"; max_staleness = 2 }) in
  expect_error "empty" (Wire.decode_request "");
  expect_error "truncated" (Wire.decode_request (String.sub good 0 (String.length good - 1)));
  expect_error "trailing" (Wire.decode_request (good ^ "\x00"));
  expect_error "bad version"
    (Wire.decode_request ("\x07" ^ String.sub good 1 (String.length good - 1)));
  expect_error "unknown tag" (Wire.decode_request "\x01\x7f");
  (* A length prefix pointing past the end of the message. *)
  expect_error "overlong string" (Wire.decode_request "\x01\x01\xffhello");
  (* A varint that never terminates / exceeds 63 bits. *)
  expect_error "runaway varint"
    (Wire.decode_request "\x01\x02ab\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff")

(* Feed arbitrary bytes to both decoders: they must return (not raise),
   and anything they accept must re-encode to the very same bytes —
   i.e. the format has no two spellings of one message. *)
let prop_decode_total_and_canonical =
  QCheck.Test.make ~name:"decoder total on garbage; accepted bytes are canonical" ~count:2000
    QCheck.(string_of Gen.char)
    (fun s ->
      (match Wire.decode_request s with
      | Ok req -> String.equal (Wire.request_to_string req) s
      | Error (_ : string) -> true)
      &&
      match Wire.decode_response s with
      | Ok resp -> String.equal (Wire.response_to_string resp) s
      | Error (_ : string) -> true)

let prop_report_roundtrips =
  QCheck.Test.make ~name:"random reports round-trip" ~count:500
    QCheck.(
      pair
        (pair (string_of Gen.printable) (pair (int_bound 1_000_000_000) pos_float))
        (pair (pair pos_float pos_float) (pair (int_bound 10_000) (int_bound 100_000))))
    (fun ((path, (bytes, duration_s)), ((min_rtt, mean_rtt), (retransmitted, segments))) ->
      let req =
        Wire.Report { path; bytes; duration_s; min_rtt; mean_rtt; retransmitted; segments }
      in
      match Wire.decode_request (Wire.request_to_string req) with
      | Ok (Wire.Report r) ->
        String.equal r.path path && r.bytes = bytes
        && Float.equal r.duration_s duration_s
        && Float.equal r.min_rtt min_rtt && Float.equal r.mean_rtt mean_rtt
        && r.retransmitted = retransmitted && r.segments = segments
      | Ok (Wire.Lookup _) | Error _ -> false)

let suite =
  [
    Alcotest.test_case "lookup round-trips" `Quick test_lookup_roundtrip;
    Alcotest.test_case "report round-trips (varint edges)" `Quick test_report_roundtrip;
    Alcotest.test_case "nan rtt sentinel survives" `Quick test_nan_sentinel_survives;
    Alcotest.test_case "responses round-trip" `Quick test_response_roundtrip;
    Alcotest.test_case "malformed bytes rejected" `Quick test_malformed_rejected;
    QCheck_alcotest.to_alcotest prop_decode_total_and_canonical;
    QCheck_alcotest.to_alcotest prop_report_roundtrips;
  ]
